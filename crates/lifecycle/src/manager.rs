//! The [`TableManager`]: one live table, served and re-sliced online.

use slicer_core::{Advisor, AdvisorSession, Budget, PartitionRequest, SessionStats};
use slicer_cost::{CostModel, DiskParams, EvalMemos, HddCostModel};
use slicer_metrics::Payoff;
use slicer_model::{ModelError, Partitioning, Query, SlidingWorkload};
use slicer_storage::{scan, RepartitionStats, ScanResult, StoredTable};

/// How the payoff test prices *adopting* a candidate layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdoptionPricing {
    /// The paper's gate: price the full
    /// [`HddCostModel::layout_creation_time`] — sequentially re-read the
    /// whole table and write every partition file, as if materializing
    /// from scratch.
    FullCreation,
    /// Price the *actual* move: the modeled incremental I/O of
    /// [`StoredTable::repartition_plan`], where kept files cost nothing.
    /// Under mild drift (most files unchanged) this adopts good layouts
    /// far earlier than the full-price gate — the ROADMAP's
    /// "repartition-aware payoff".
    #[default]
    IncrementalMove,
}

/// Tuning knobs of one [`TableManager`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableManagerConfig {
    /// Sliding-window capacity in queries: the workload the advisor sees.
    pub window: usize,
    /// Re-advise after every this many executed queries.
    pub advise_every: u64,
    /// Budget for each advisor run (anytime best-so-far under deadline
    /// and/or step caps; see [`Budget`]).
    pub budget: Budget,
    /// Payoff horizon in *window workload executions*: a candidate layout
    /// is adopted only when `optimization time + adoption price`
    /// amortizes against the per-execution saving within this many
    /// executions of the windowed workload (the paper's Figure 10 payoff
    /// test, applied online).
    pub payoff_horizon: f64,
    /// How adoption is priced in the payoff test (see [`AdoptionPricing`]).
    pub pricing: AdoptionPricing,
}

impl Default for TableManagerConfig {
    fn default() -> Self {
        TableManagerConfig {
            window: 64,
            advise_every: 16,
            budget: Budget::UNLIMITED,
            payoff_horizon: 16.0,
            pricing: AdoptionPricing::IncrementalMove,
        }
    }
}

/// Aggregate counters over a manager's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ManagerStats {
    /// Queries executed.
    pub queries: u64,
    /// Advisor sessions run.
    pub advisor_runs: u64,
    /// Advisor sessions stopped by their budget (best-so-far layouts).
    pub truncated_runs: u64,
    /// Re-partitionings applied.
    pub repartitions: u64,
    /// Candidate layouts rejected by the payoff test.
    pub rejected_by_payoff: u64,
    /// Simulated scan I/O seconds, summed.
    pub scan_io_seconds: f64,
    /// Measured scan CPU seconds, summed.
    pub scan_cpu_seconds: f64,
    /// Compressed bytes read by scans, summed.
    pub bytes_read: u64,
    /// Wall-clock seconds spent in advisor sessions, summed.
    pub advisor_seconds: f64,
    /// Modeled incremental I/O seconds spent re-partitioning, summed.
    pub repartition_io_seconds: f64,
    /// Measured CPU seconds spent re-partitioning, summed.
    pub repartition_cpu_seconds: f64,
}

/// One applied re-partitioning.
#[derive(Debug, Clone)]
pub struct RepartitionEvent {
    /// Query count at which the move happened.
    pub at_query: u64,
    /// The layout moved away from.
    pub old_layout: Partitioning,
    /// The layout moved to.
    pub new_layout: Partitioning,
    /// Windowed workload cost under the old layout.
    pub old_cost: f64,
    /// Windowed workload cost under the new layout.
    pub new_cost: f64,
    /// The payoff analysis that green-lit the move.
    pub payoff: Payoff,
    /// What the in-place re-slice touched and cost.
    pub stats: RepartitionStats,
    /// True iff the advisor session that produced the layout was stopped
    /// by its budget (the layout is best-so-far, not a local optimum).
    pub truncated_search: bool,
}

/// Outcome of the re-advise check after one executed query.
#[derive(Debug, Clone)]
pub enum RepartitionDecision {
    /// The re-advise cadence has not come up yet.
    NotDue,
    /// The advisor confirmed the current layout (or an empty window).
    NoChange,
    /// A better layout exists but does not amortize within the horizon.
    Rejected {
        /// The failed payoff analysis (its
        /// [`Payoff::executions_to_pay_off`] exceeds the horizon, or the
        /// saving is non-positive).
        payoff: Payoff,
    },
    /// The table was re-sliced in place.
    Applied(Box<RepartitionEvent>),
    /// The advisor session itself failed (e.g. the configured advisor
    /// cannot handle the table — BruteForce over too large a space,
    /// Trojan over too wide a schema). The layout is unchanged; the query
    /// that triggered the cadence was still served and windowed.
    Failed {
        /// The advisor's error.
        error: ModelError,
    },
}

/// Serves scans over one [`StoredTable`] while adapting its layout to the
/// observed workload: every query lands in a sliding window; on a cadence
/// the window is re-advised under a budget (with warm evaluator memos
/// carried across runs); and when the payoff test approves, the table is
/// re-sliced in place via [`StoredTable::repartition`].
pub struct TableManager {
    table: StoredTable,
    advisor: Box<dyn Advisor>,
    cost: HddCostModel,
    disk: DiskParams,
    window: SlidingWorkload,
    cfg: TableManagerConfig,
    memos: EvalMemos,
    stats: ManagerStats,
}

impl TableManager {
    /// Manage `table`, re-advising with `advisor` under `cost` (whose disk
    /// parameters also drive the simulated scan I/O).
    ///
    /// # Panics
    /// If `cfg.advise_every` is zero (the advisor would never run) or
    /// `cfg.window` is zero (rejected by [`SlidingWorkload::new`]).
    pub fn new(
        table: StoredTable,
        advisor: Box<dyn Advisor>,
        cost: HddCostModel,
        cfg: TableManagerConfig,
    ) -> TableManager {
        assert!(cfg.advise_every > 0, "advise cadence must be positive");
        let disk = cost.params();
        let window = SlidingWorkload::new(cfg.window);
        TableManager {
            table,
            advisor,
            cost,
            disk,
            window,
            cfg,
            memos: EvalMemos::new(),
            stats: ManagerStats::default(),
        }
    }

    /// The managed table.
    pub fn table(&self) -> &StoredTable {
        &self.table
    }

    /// The table's current layout.
    pub fn layout(&self) -> &Partitioning {
        &self.table.layout
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &ManagerStats {
        &self.stats
    }

    /// The current sliding window, snapshotted.
    pub fn window(&self) -> slicer_model::Workload {
        self.window.workload()
    }

    /// Execute one query: scan the table under the current layout, record
    /// the query into the sliding window, and — on the configured cadence —
    /// re-advise and possibly re-slice.
    ///
    /// `Err` means the query does not fit the table's schema and was *not*
    /// served or windowed (the window bypasses `Workload`'s validated
    /// constructors, so the gate lives here). A failing advisor never
    /// discards a served scan: it surfaces as
    /// [`RepartitionDecision::Failed`] alongside the result.
    pub fn execute(
        &mut self,
        query: Query,
    ) -> Result<(ScanResult, RepartitionDecision), ModelError> {
        let result = self.serve(query)?;
        let decision = if self.stats.queries.is_multiple_of(self.cfg.advise_every) {
            self.advise_with(self.cfg.budget).0
        } else {
            RepartitionDecision::NotDue
        };
        Ok((result, decision))
    }

    /// Serve one query — scan, stats, window — without consulting the
    /// re-advise cadence. This is the routing half of [`TableManager::execute`];
    /// a fleet front end that schedules advisor sessions centrally calls
    /// this per query and decides itself when (and with what budget) each
    /// table gets advised.
    pub fn serve(&mut self, query: Query) -> Result<ScanResult, ModelError> {
        query.validate(&self.table.schema)?;
        let result = scan(&self.table, query.referenced, &self.disk);
        self.stats.queries += 1;
        self.stats.scan_io_seconds += result.io_seconds;
        self.stats.scan_cpu_seconds += result.cpu_seconds;
        self.stats.bytes_read += result.bytes_read;
        self.window.observe(query);
        Ok(result)
    }

    /// Run one budgeted advisor session over the current window and apply
    /// the payoff test, regardless of cadence.
    pub fn advise_now(&mut self) -> Result<RepartitionDecision, ModelError> {
        match self.advise_with(self.cfg.budget) {
            (RepartitionDecision::Failed { error }, _) => Err(error),
            (decision, _) => Ok(decision),
        }
    }

    /// [`TableManager::advise_now`] with an explicit budget override (a
    /// fleet granting slices of a shared pool) — returning the session's
    /// spend telemetry alongside the decision so the caller can charge a
    /// [`slicer_core::BudgetPool`] for what was *actually* consumed. An
    /// advisor failure surfaces as [`RepartitionDecision::Failed`], never
    /// as an `Err`; an empty window is a no-work [`RepartitionDecision::NoChange`]
    /// with zeroed stats.
    pub fn advise_with(&mut self, budget: Budget) -> (RepartitionDecision, SessionStats) {
        let no_work = SessionStats {
            steps: 0,
            candidates: 0,
            truncated: false,
            elapsed: std::time::Duration::ZERO,
        };
        if self.window.is_empty() {
            return (RepartitionDecision::NoChange, no_work);
        }
        let window = self.window.workload();
        let candidate;
        let session_stats;
        {
            let schema = &self.table.schema;
            let req = PartitionRequest::new(schema, &window, &self.cost);
            let mut session =
                AdvisorSession::new(&req, budget).with_memos(std::mem::take(&mut self.memos));
            let outcome = self.advisor.partition_session(&mut session);
            self.memos = session.take_memos();
            session_stats = session.stats();
            candidate = match outcome {
                Ok(candidate) => candidate,
                Err(error) => return (RepartitionDecision::Failed { error }, session_stats),
            };
        }
        self.stats.advisor_runs += 1;
        self.stats.advisor_seconds += session_stats.elapsed.as_secs_f64();
        if session_stats.truncated {
            self.stats.truncated_runs += 1;
        }
        if candidate == self.table.layout {
            return (RepartitionDecision::NoChange, session_stats);
        }
        let schema = &self.table.schema;
        let old_cost = self.cost.workload_cost(schema, &self.table.layout, &window);
        let new_cost = self.cost.workload_cost(schema, &candidate, &window);
        let creation_time = match self.cfg.pricing {
            AdoptionPricing::FullCreation => self.cost.layout_creation_time(schema, &candidate),
            AdoptionPricing::IncrementalMove => {
                self.table
                    .repartition_plan(&candidate, &self.disk)
                    .io_seconds
            }
        };
        let payoff = Payoff {
            optimization_time: session_stats.elapsed.as_secs_f64(),
            creation_time,
            saving_per_execution: old_cost - new_cost,
        };
        let decision = match payoff.executions_to_pay_off() {
            Some(executions) if executions <= self.cfg.payoff_horizon => {
                let old_layout = self.table.layout.clone();
                let stats = self.table.repartition(&candidate, &self.disk);
                self.stats.repartitions += 1;
                self.stats.repartition_io_seconds += stats.io_seconds;
                self.stats.repartition_cpu_seconds += stats.cpu_seconds;
                RepartitionDecision::Applied(Box::new(RepartitionEvent {
                    at_query: self.stats.queries,
                    old_layout,
                    new_layout: candidate,
                    old_cost,
                    new_cost,
                    payoff,
                    stats,
                    truncated_search: session_stats.truncated,
                }))
            }
            _ => {
                self.stats.rejected_by_payoff += 1;
                RepartitionDecision::Rejected { payoff }
            }
        };
        (decision, session_stats)
    }

    /// Estimated cost of one execution of the current window under the
    /// table's current layout (the fleet's drift numerator; zero for an
    /// empty window).
    pub fn window_cost(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        let window = self.window.workload();
        self.cost
            .workload_cost(&self.table.schema, &self.table.layout, &window)
    }

    /// Sum of the windowed queries' weights.
    pub fn window_weight(&self) -> f64 {
        self.window.total_weight()
    }

    /// The current window's access profile over the table's attributes
    /// (see [`SlidingWorkload::access_profile`]).
    pub fn window_profile(&self) -> Vec<f64> {
        self.window.access_profile(self.table.schema.attr_count())
    }

    /// Drift of the current window away from a reference access profile
    /// (see [`SlidingWorkload::drift_from`]).
    pub fn window_drift_from(&self, reference: &[f64]) -> f64 {
        self.window.drift_from(reference)
    }

    /// The manager's configuration.
    pub fn config(&self) -> &TableManagerConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicer_core::HillClimb;
    use slicer_model::TableSchema;
    use slicer_storage::{generate_table, scan_naive, CompressionPolicy};
    use slicer_workloads::tpch;

    const ROWS: usize = 4000;

    fn lineitem() -> TableSchema {
        tpch::table(tpch::TpchTable::Lineitem, 1.0).with_row_count(ROWS as u64)
    }

    fn manager(cfg: TableManagerConfig) -> TableManager {
        let schema = lineitem();
        let data = generate_table(&schema, ROWS, 7);
        let table = StoredTable::load(
            &schema,
            &data,
            &Partitioning::row(&schema),
            CompressionPolicy::Default,
        );
        TableManager::new(
            table,
            Box::new(HillClimb::new()),
            HddCostModel::paper_testbed(),
            cfg,
        )
    }

    fn pricing(schema: &TableSchema) -> Query {
        Query::new(
            "pricing",
            schema
                .attr_set(&["Quantity", "ExtendedPrice", "Discount", "ShipDate"])
                .unwrap(),
        )
    }

    fn logistics(schema: &TableSchema) -> Query {
        Query::new(
            "logistics",
            schema
                .attr_set(&["OrderKey", "CommitDate", "ReceiptDate", "ShipMode"])
                .unwrap(),
        )
    }

    #[test]
    fn drift_triggers_payoff_gated_repartitions() {
        let mut m = manager(TableManagerConfig {
            window: 16,
            advise_every: 8,
            budget: Budget::UNLIMITED,
            payoff_horizon: 64.0,
            ..TableManagerConfig::default()
        });
        let schema = lineitem();
        let mut applied = 0u64;
        for _ in 0..16 {
            let (_, d) = m.execute(pricing(&schema)).unwrap();
            if matches!(d, RepartitionDecision::Applied(_)) {
                applied += 1;
            }
        }
        assert!(applied >= 1, "pricing phase should trigger a repartition");
        assert!(m.layout().len() > 1, "row layout should have been sliced");
        let pricing_layout = m.layout().clone();
        for _ in 0..24 {
            let (_, d) = m.execute(logistics(&schema)).unwrap();
            if matches!(d, RepartitionDecision::Applied(_)) {
                applied += 1;
            }
        }
        assert!(applied >= 2, "the phase shift should re-slice again");
        assert_ne!(&pricing_layout, m.layout());
        assert_eq!(m.stats().repartitions, applied);
        assert!(m.stats().advisor_runs >= applied);
    }

    #[test]
    fn repartitioned_table_scans_like_fresh_load() {
        let mut m = manager(TableManagerConfig {
            window: 16,
            advise_every: 8,
            budget: Budget::UNLIMITED,
            payoff_horizon: 64.0,
            ..TableManagerConfig::default()
        });
        let schema = lineitem();
        for _ in 0..16 {
            m.execute(pricing(&schema)).unwrap();
        }
        assert!(m.stats().repartitions >= 1);
        let data = generate_table(&schema, ROWS, 7);
        let fresh = StoredTable::load(&schema, &data, m.layout(), CompressionPolicy::Default);
        let disk = HddCostModel::paper_testbed().params();
        for q in [pricing(&schema), logistics(&schema)] {
            let a = scan_naive(m.table(), q.referenced, &disk);
            let b = scan_naive(&fresh, q.referenced, &disk);
            assert_eq!(a.checksum, b.checksum);
            assert_eq!(a.bytes_read, b.bytes_read);
        }
    }

    #[test]
    fn advisor_failure_surfaces_as_decision_not_error() {
        // An advisor that cannot handle the table (BruteForce over a space
        // larger than its cap) must not fail the query that was already
        // served — it reports RepartitionDecision::Failed instead.
        let schema = lineitem();
        let data = generate_table(&schema, ROWS, 7);
        let table = StoredTable::load(
            &schema,
            &data,
            &Partitioning::row(&schema),
            CompressionPolicy::Default,
        );
        let mut m = TableManager::new(
            table,
            Box::new(slicer_core::BruteForce::exhaustive().with_max_candidates(1)),
            HddCostModel::paper_testbed(),
            TableManagerConfig {
                advise_every: 4,
                ..TableManagerConfig::default()
            },
        );
        for i in 1..=8u64 {
            let (_, decision) = m.execute(pricing(&schema)).expect("query fits the schema");
            if i.is_multiple_of(4) {
                assert!(matches!(decision, RepartitionDecision::Failed { .. }));
            } else {
                assert!(matches!(decision, RepartitionDecision::NotDue));
            }
        }
        assert_eq!(m.stats().queries, 8, "every query was served and counted");
    }

    #[test]
    fn incremental_pricing_adopts_mild_drift_earlier_than_full_price() {
        // Mild drift: the table already serves phase A well; phase B only
        // wants one extra attribute co-located, so the best candidate is a
        // 1-group change that keeps every other file. The incremental-move
        // price is then a fraction of the full creation price, and with a
        // horizon between the two payoff counts the full-price gate
        // rejects the very move the incremental gate adopts.
        let schema = slicer_model::TableSchema::builder("T", 50_000)
            .attr("A", 8, slicer_model::AttrKind::Decimal)
            .attr("B", 8, slicer_model::AttrKind::Decimal)
            .attr("C", 8, slicer_model::AttrKind::Decimal)
            .attr("D", 8, slicer_model::AttrKind::Decimal)
            .attr("E", 8, slicer_model::AttrKind::Decimal)
            .attr("F", 199, slicer_model::AttrKind::Text)
            .build()
            .unwrap();
        let rows = 50_000usize;
        let data = generate_table(&schema, rows, 11);
        // The layout phase A settled on: pricing columns together, the rest
        // in their own files.
        let settled = Partitioning::new(
            &schema,
            vec![
                schema.attr_set(&["A", "B"]).unwrap(),
                schema.attr_set(&["C", "D"]).unwrap(),
                schema.attr_set(&["E"]).unwrap(),
                schema.attr_set(&["F"]).unwrap(),
            ],
        )
        .unwrap();
        let model = HddCostModel::paper_testbed();
        let steady = Query::new("a", schema.attr_set(&["A", "B"]).unwrap());
        let drift = Query::new("b", schema.attr_set(&["C", "D", "E"]).unwrap());
        // Mild drift: phase A traffic keeps dominating the window, phase B
        // only asks for E to join the C/D file.
        let window_queries = |(): ()| -> Vec<Query> {
            (0..16)
                .map(|i| {
                    if i % 4 == 3 {
                        drift.clone()
                    } else {
                        steady.clone()
                    }
                })
                .collect()
        };

        // Dry pricing of the move the advisor will propose on the drifted
        // window, with optimization time factored out.
        let (candidate, saving, full_price, inc_price) = {
            let table = StoredTable::load(&schema, &data, &settled, CompressionPolicy::Default);
            let window = slicer_model::Workload::with_queries(&schema, window_queries(())).unwrap();
            let req = slicer_core::PartitionRequest::new(&schema, &window, &model);
            let candidate = HillClimb::new().partition(&req).unwrap();
            assert_ne!(candidate, settled, "the drift must warrant a move");
            let plan = table.repartition_plan(&candidate, &model.params());
            assert!(
                plan.files_kept >= 2 && plan.files_rebuilt <= 2,
                "mild drift should be a small change: {plan:?}"
            );
            let saving = model.workload_cost(&schema, &settled, &window)
                - model.workload_cost(&schema, &candidate, &window);
            assert!(saving > 0.0);
            let full_price = model.layout_creation_time(&schema, &candidate);
            (candidate, saving, full_price, plan.io_seconds)
        };
        let exec_full = full_price / saving;
        let exec_inc = inc_price / saving;
        assert!(
            exec_inc * 2.0 <= exec_full,
            "incremental price must pay off markedly earlier: {exec_inc} vs {exec_full}"
        );

        // Behavioral check: identical managers, identical drifted windows,
        // a horizon between the two payoff counts — only the pricing knob
        // differs, and only the incremental gate green-lights the move.
        let horizon = (exec_full * exec_inc).sqrt();
        let run = |pricing: AdoptionPricing| -> RepartitionDecision {
            let table = StoredTable::load(&schema, &data, &settled, CompressionPolicy::Default);
            let mut m = TableManager::new(
                table,
                Box::new(HillClimb::new()),
                model,
                TableManagerConfig {
                    window: 16,
                    advise_every: u64::MAX, // scheduled by hand below
                    budget: Budget::UNLIMITED,
                    payoff_horizon: horizon,
                    pricing,
                },
            );
            for q in window_queries(()) {
                m.serve(q).unwrap();
            }
            m.advise_now().unwrap()
        };
        match run(AdoptionPricing::FullCreation) {
            RepartitionDecision::Rejected { payoff } => {
                assert!(payoff.executions_to_pay_off().unwrap() > horizon);
            }
            other => panic!("full-price gate should reject the mild move, got {other:?}"),
        }
        match run(AdoptionPricing::IncrementalMove) {
            RepartitionDecision::Applied(ev) => {
                assert_eq!(ev.new_layout, candidate);
                assert!(ev.payoff.executions_to_pay_off().unwrap() <= horizon);
                assert!(ev.stats.files_kept >= 2, "the move really was mild");
            }
            other => panic!("incremental gate should adopt the mild move, got {other:?}"),
        }
    }

    #[test]
    fn out_of_schema_queries_are_rejected() {
        let mut m = manager(TableManagerConfig::default());
        let bad = Query::new("bad", slicer_model::AttrSet::single(40usize));
        assert!(m.execute(bad).is_err(), "16-attr Lineitem has no attr 40");
        assert_eq!(m.stats().queries, 0, "rejected queries must not count");
        assert!(m.window().is_empty(), "and must not enter the window");
    }

    #[test]
    fn zero_horizon_rejects_every_move() {
        let mut m = manager(TableManagerConfig {
            window: 16,
            advise_every: 4,
            budget: Budget::UNLIMITED,
            payoff_horizon: 0.0,
            ..TableManagerConfig::default()
        });
        let schema = lineitem();
        for _ in 0..16 {
            let (_, d) = m.execute(pricing(&schema)).unwrap();
            assert!(!matches!(d, RepartitionDecision::Applied(_)));
        }
        assert_eq!(m.stats().repartitions, 0);
        assert!(m.stats().rejected_by_payoff >= 1);
        assert_eq!(m.layout().len(), 1, "still the row layout");
    }

    #[test]
    fn budgeted_sessions_are_recorded() {
        let mut m = manager(TableManagerConfig {
            window: 16,
            advise_every: 4,
            budget: Budget::deadline(std::time::Duration::ZERO),
            payoff_horizon: 64.0,
            ..TableManagerConfig::default()
        });
        let schema = lineitem();
        for _ in 0..8 {
            m.execute(pricing(&schema)).unwrap();
        }
        assert!(m.stats().advisor_runs >= 1);
        assert_eq!(m.stats().truncated_runs, m.stats().advisor_runs);
        // A zero-deadline HillClimb returns its column seed — a valid
        // best-so-far layout; whether it is adopted depends on the payoff.
        assert!(Partitioning::new(&m.table().schema, m.layout().partitions().to_vec()).is_ok());
    }
}
