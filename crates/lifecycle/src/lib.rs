//! # slicer-lifecycle
//!
//! Partitioning as a *lifecycle*, not a one-shot call. The paper's payoff
//! analysis (Appendix A.1, Figure 10) and its re-optimization sweeps
//! (Figures 9/12/13) both ask the same operational question: *when is it
//! worth moving a live table to a better layout?* This crate answers it
//! end to end:
//!
//! * [`TableManager`] serves scans over a [`slicer_storage::StoredTable`]
//!   while streaming every query into a sliding-window workload
//!   ([`slicer_model::SlidingWorkload`]);
//! * on a configurable cadence it re-advises the window under a
//!   [`slicer_core::Budget`] (anytime, best-so-far — heavy traffic cannot
//!   wait for an unbounded search), reusing warm
//!   [`slicer_cost::EvalMemos`] across successive runs;
//! * a candidate layout is adopted only when the paper's payoff test says
//!   the investment amortizes — `optimization time + layout creation
//!   time` against the per-window-execution saving — within the
//!   configured horizon;
//! * adoption happens through [`slicer_storage::StoredTable::repartition`],
//!   the in-place incremental re-slice, not a full reload.
//!
//! The `online_bench` binary in `slicer-experiments` drives a pricing →
//! logistics phase shift over TPC-H Lineitem through this manager and
//! records the resulting `BENCH_online.json`.

#![warn(missing_docs)]

mod manager;

pub use manager::{
    ManagerStats, RepartitionDecision, RepartitionEvent, TableManager, TableManagerConfig,
};
