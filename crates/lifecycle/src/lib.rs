//! # slicer-lifecycle
//!
//! Partitioning as a *lifecycle*, not a one-shot call. The paper's payoff
//! analysis (Appendix A.1, Figure 10) and its re-optimization sweeps
//! (Figures 9/12/13) both ask the same operational question: *when is it
//! worth moving a live table to a better layout?* This crate answers it
//! end to end:
//!
//! * [`TableManager`] serves scans over a [`slicer_storage::StoredTable`]
//!   while streaming every query into a sliding-window workload
//!   ([`slicer_model::SlidingWorkload`]);
//! * on a configurable cadence it re-advises the window under a
//!   [`slicer_core::Budget`] (anytime, best-so-far — heavy traffic cannot
//!   wait for an unbounded search), reusing warm
//!   [`slicer_cost::EvalMemos`] across successive runs;
//! * a candidate layout is adopted only when the paper's payoff test says
//!   the investment amortizes — `optimization time + layout creation
//!   time` against the per-window-execution saving — within the
//!   configured horizon;
//! * adoption happens through [`slicer_storage::StoredTable::repartition`],
//!   the zero-stall double-buffered incremental re-slice, not a full
//!   reload — and the serve front ([`TableManager::serve_batch_with`],
//!   [`TableFleet::serve_batch_with`]) drains query batches across worker
//!   threads *while* advise rounds and re-partitions proceed on the
//!   calling thread, with per-table [`RealizedPayoff`] ledgers tracking
//!   what each adopted move invested versus what the traffic served since
//!   actually saved.
//!
//! The lifecycle also owns the *write* path: [`TableManager::ingest`] and
//! [`TableFleet::ingest`] route [`slicer_storage::IngestBatch`]es into the
//! managed tables' WAL'd row-store deltas. A grown delta taxes every
//! windowed scan, the manager's window cost (and thus the fleet's drift
//! signal) prices that tax in, and the payoff gate weighs "repartition now
//! and fold the delta" against letting it accrue — so a table under
//! sustained ingest re-slices even when the query mix never drifts.
//!
//! Above the single-table manager sits the [`TableFleet`]: one manager
//! per table, a query router keyed by table name, and a **shared** advisor
//! budget spent across the fleet most-drifted-table-first (with
//! equal-split and round-robin baselines), so whole-benchmark traffic —
//! TPC-H and SSB side by side — is served and re-optimized under one
//! bounded optimization budget.
//!
//! The `online_bench` binary in `slicer-experiments` drives a pricing →
//! logistics phase shift over TPC-H Lineitem through the manager, and
//! `fleet_bench` drives a mixed TPC-H+SSB trace through the fleet under
//! all three schedules; they record `BENCH_online.json` and
//! `BENCH_fleet.json`.

#![warn(missing_docs)]

mod fleet;
mod manager;
mod serve;

pub use fleet::{
    DriftScore, FleetConfig, FleetOutcome, FleetSchedule, FleetStats, ScanTarget, TableFleet,
};
pub use manager::{
    AdoptionPricing, ManagerStats, RealizedPayoff, RepartitionDecision, RepartitionEvent,
    ServeBatchReport, TableManager, TableManagerConfig,
};
