//! The shared drain kernel behind [`crate::TableManager::serve_batch_with`]
//! and [`crate::TableFleet::serve_batch_with`]: worker threads claim
//! events off an atomic queue, pin a snapshot per scan, and scan through
//! one shared per-table [`ScanExecutor`], while the caller's `overlap`
//! closure runs on the calling thread. The two fronts differ only in
//! routing (a manager is a one-table fleet here), so the claim loop,
//! timing, and report fold live once.

use crate::manager::ServeBatchReport;
use slicer_cost::DiskParams;
use slicer_model::Query;
use slicer_storage::{ScanExecutor, ScanResult, StoredTable, TableSnapshot};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One drained event: the scan's result and the snapshot it pinned, in
/// event order. The snapshot is kept (an `Arc` clone, usually of the same
/// few snapshots) so the fold can attribute each scan to the layout it
/// *actually* read — a move landing mid-drain must not be credited for
/// the scans that preceded it.
pub(crate) type DrainedEvent = (ScanResult, Arc<TableSnapshot>);

/// Drain `queries` (event `i` routed to `tables[routed[i]]`) across
/// `threads` workers while `overlap` runs on the calling thread.
///
/// `wall_seconds` measures the drain itself — start to the *last worker's
/// last scan* — so an `overlap` that outlives the drain (a slow advise
/// round, a deliberate sleep) does not dilute the throughput number.
pub(crate) fn drain_batch<R>(
    tables: &[Arc<StoredTable>],
    disks: &[DiskParams],
    routed: &[usize],
    queries: &[Query],
    threads: usize,
    overlap: impl FnOnce() -> R,
) -> (Vec<DrainedEvent>, f64, R) {
    let threads = threads.max(1);
    let executors: Vec<ScanExecutor<'_>> = tables.iter().map(|t| ScanExecutor::new(t)).collect();
    let next = AtomicUsize::new(0);
    let start = Instant::now();
    let mut per_worker: Vec<(Vec<(usize, DrainedEvent)>, f64)> = Vec::new();
    let mut overlap_out = None;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let executors = &executors;
                let tables = &tables;
                let disks = &disks;
                let routed = &routed;
                let next = &next;
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= queries.len() {
                            break;
                        }
                        let t = routed[i];
                        let snapshot = tables[t].snapshot();
                        let r = executors[t].scan_query_snapshot(&snapshot, &queries[i], &disks[t]);
                        out.push((i, (r, snapshot)));
                    }
                    // Per-worker finish time: the drain is over when the
                    // slowest worker ran dry, not when `overlap` returns.
                    (out, start.elapsed().as_secs_f64())
                })
            })
            .collect();
        overlap_out = Some(overlap());
        per_worker = handles
            .into_iter()
            .map(|h| h.join().expect("scan worker panicked"))
            .collect();
    });
    let wall_seconds = per_worker
        .iter()
        .map(|(_, elapsed)| *elapsed)
        .fold(0.0f64, f64::max);

    let mut ordered: Vec<Option<DrainedEvent>> = vec![None; queries.len()];
    for (i, ev) in per_worker.into_iter().flat_map(|(out, _)| out) {
        ordered[i] = Some(ev);
    }
    let events: Vec<DrainedEvent> = ordered
        .into_iter()
        .map(|ev| ev.expect("every index was drained"))
        .collect();
    (events, wall_seconds, overlap_out.expect("overlap ran"))
}

/// Fold drained events into a [`ServeBatchReport`]. `fallback_generation`
/// fills the generation span for an empty batch.
pub(crate) fn fold_report(
    events: &[DrainedEvent],
    threads: usize,
    wall_seconds: f64,
    fallback_generation: u64,
) -> ServeBatchReport {
    let mut report = ServeBatchReport {
        queries: events.len() as u64,
        threads: threads.max(1),
        wall_seconds,
        queries_per_second: if events.is_empty() {
            0.0
        } else {
            events.len() as f64 / wall_seconds.max(f64::MIN_POSITIVE)
        },
        checksum: 0,
        scan_io_seconds: 0.0,
        scan_cpu_seconds: 0.0,
        bytes_read: 0,
        min_generation: fallback_generation,
        max_generation: fallback_generation,
    };
    for (i, (result, snapshot)) in events.iter().enumerate() {
        report.checksum ^= result.checksum.rotate_left((i % 63) as u32);
        report.scan_io_seconds += result.io_seconds;
        report.scan_cpu_seconds += result.cpu_seconds;
        report.bytes_read += result.bytes_read;
        if i == 0 {
            report.min_generation = snapshot.generation;
            report.max_generation = snapshot.generation;
        } else {
            report.min_generation = report.min_generation.min(snapshot.generation);
            report.max_generation = report.max_generation.max(snapshot.generation);
        }
    }
    report
}
