//! The [`TableFleet`]: many live tables, one advisor budget.
//!
//! The paper evaluates its advisors per table, but the benchmarks those
//! advisors target (TPC-H, SSB) are *fleets* of tables competing for one
//! optimization budget. Like slicing a loaf, where total effort drops when
//! strokes are distributed across slices instead of sawing one slice to
//! completion, a fleet should spend its bounded advisor budget on the most
//! drifted table first rather than exhausting it on whichever table
//! arrived first.
//!
//! A `TableFleet` owns one [`TableManager`] per table and routes each
//! incoming query to its table by name ([`TableFleet::execute`]), so every
//! manager keeps its own sliding window and warm evaluator memos. On a
//! fleet-wide cadence it runs an *advise round*: a scheduling pass that
//! spends one shared per-round [`Budget`] across the managers according to
//! the configured [`FleetSchedule`] —
//!
//! * [`FleetSchedule::SharedDriftFirst`] (the headline): tables are
//!   visited most-drifted first, each granted the **whole remaining**
//!   [`BudgetPool`]; the pool is then charged for what the session
//!   actually spent, so early-stopping sessions effectively refund their
//!   remainder to the tables behind them.
//! * [`FleetSchedule::EqualSplit`]: the round budget is divided evenly
//!   up front; unspent slices are *not* refunded (the per-table-fair
//!   baseline).
//! * [`FleetSchedule::RoundRobin`]: one table per round in rotation gets
//!   the whole budget (the drift-blind baseline).
//!
//! Drift is scored per table from the window cost versus the cost the
//! current layout was anchored at (the last completed advisor session over
//! that table), with the window's access-profile drift
//! ([`slicer_model::SlidingWorkload::drift_from`]) as the tie-breaker —
//! a table whose traffic changed shape but not (yet) cost still ranks
//! above one whose window is unchanged.

use crate::manager::{RealizedPayoff, RepartitionDecision, ServeBatchReport, TableManager};
use slicer_core::{Budget, BudgetPool, SessionStats};
use slicer_cost::DiskParams;
use slicer_model::{ModelError, Query};
use slicer_storage::{
    IngestBatch, IngestStats, ScanResult, StorageError, StoredTable, TableSnapshot,
};
use std::collections::HashMap;
use std::sync::Arc;

/// How a fleet spends its per-round advisor budget across its tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FleetSchedule {
    /// Most-drifted table first, each granted the whole remaining shared
    /// pool; sessions are charged for actual spend, so unused budget flows
    /// on to the next table.
    #[default]
    SharedDriftFirst,
    /// The round budget is split evenly across tables with non-empty
    /// windows, drift-blind; unspent slices are not refunded. (A slice of
    /// a tiny budget is floored at one step / one nanosecond, so a very
    /// wide fleet can in aggregate slightly oversubscribe the round — the
    /// fairness baseline's known cost.)
    EqualSplit,
    /// One table per round, in rotation, granted the whole round budget,
    /// drift-blind.
    RoundRobin,
}

/// Tuning knobs of one [`TableFleet`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Run one advise round after every this many routed queries
    /// (fleet-wide, not per table).
    pub advise_every: u64,
    /// The shared advisor budget of one round (see [`FleetSchedule`] for
    /// how it is spent).
    pub round_budget: Budget,
    /// The scheduling policy.
    pub schedule: FleetSchedule,
    /// Drift-first only: a table with an anchor whose [`DriftScore`] is
    /// strictly below this floor on *both* axes is not visited at all —
    /// its window still looks the way it did when the advisor last ruled
    /// on it, so a session there can only burn budget or thrash the
    /// layout. `0.0` (the default) never skips anything (scores are
    /// clamped non-negative), which keeps a one-table fleet behaviorally
    /// identical to a lone [`TableManager`]. The drift-blind baselines
    /// ignore the floor — they have no drift signal to apply it to.
    pub drift_floor: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            advise_every: 16,
            round_budget: Budget::UNLIMITED,
            schedule: FleetSchedule::SharedDriftFirst,
            drift_floor: 0.0,
        }
    }
}

/// Aggregate counters over a fleet's lifetime. Per-table counters live on
/// each manager ([`TableFleet::manager`] → [`TableManager::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FleetStats {
    /// Queries routed and served.
    pub queries: u64,
    /// Advise rounds run.
    pub rounds: u64,
    /// Advisor sessions run across all tables.
    pub sessions: u64,
    /// Sessions not run because the shared pool was exhausted before
    /// their table's turn came (drift-first only).
    pub sessions_skipped: u64,
    /// Advisor steps actually consumed, summed across sessions.
    pub steps_spent: u64,
    /// Wall-clock seconds spent in advisor sessions, summed.
    pub advisor_seconds: f64,
    /// Re-partitionings applied across all tables.
    pub repartitions: u64,
    /// Candidate layouts rejected by the payoff test, across all tables.
    pub rejected_by_payoff: u64,
    /// Sessions whose advisor failed outright.
    pub failed_sessions: u64,
    /// Modeled incremental I/O invested in adopted moves, summed over all
    /// tables — re-recorded at every advise round (the fleet-wide half of
    /// the per-table [`RealizedPayoff`] ledger the ROADMAP's "learned
    /// drift floor" needs; per-table numbers via
    /// [`TableFleet::realized_payoff`]).
    pub payoff_invested_io_seconds: f64,
    /// Modeled I/O the served traffic saved versus each table's forgone
    /// layout, summed over all tables — re-recorded at every advise round.
    pub payoff_saved_io_seconds: f64,
    /// Ingest batches routed through [`TableFleet::ingest`], fleet-wide
    /// (per-table ingest counters live on each manager's
    /// [`crate::manager::ManagerStats`]).
    pub ingest_batches: u64,
}

/// Drift priority of one table: compared lexicographically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftScore {
    /// Relative cost regret: how much worse (fraction ≥ 0) the current
    /// window performs per unit weight than at the anchor point.
    /// `f64::INFINITY` for a table that was never advised (no anchor);
    /// `f64::NEG_INFINITY` for an empty window (nothing to advise).
    pub cost_regret: f64,
    /// Mean absolute access-profile change since the anchor, in `[0, 1]`
    /// (see [`slicer_model::SlidingWorkload::drift_from`]).
    pub profile_drift: f64,
}

impl DriftScore {
    fn key(&self) -> (f64, f64) {
        (self.cost_regret, self.profile_drift)
    }

    /// True iff `self` outranks `other` (strictly more drifted).
    pub fn outranks(&self, other: &DriftScore) -> bool {
        let (a, b) = (self.key(), other.key());
        a.0 > b.0 || (a.0 == b.0 && a.1 > b.1)
    }
}

struct FleetEntry {
    name: String,
    manager: TableManager,
    /// Window cost per unit weight at the last completed advisor session
    /// over this table (`None` until then).
    anchor_cost_per_weight: Option<f64>,
    /// Window access profile snapshotted at the same point.
    reference_profile: Vec<f64>,
}

impl FleetEntry {
    fn drift(&self) -> DriftScore {
        let weight = self.manager.window_weight();
        if weight <= 0.0 {
            return DriftScore {
                cost_regret: f64::NEG_INFINITY,
                profile_drift: 0.0,
            };
        }
        let profile_drift = self.manager.window_drift_from(&self.reference_profile);
        let cost_regret = match self.anchor_cost_per_weight {
            None => f64::INFINITY,
            Some(anchor) if anchor > 0.0 => {
                (self.manager.window_cost() / weight / anchor - 1.0).max(0.0)
            }
            Some(_) => 0.0,
        };
        DriftScore {
            cost_regret,
            profile_drift,
        }
    }

    /// Re-anchor after a completed session: the advisor has just had its
    /// say over this window, so drift restarts from here.
    fn re_anchor(&mut self) {
        let weight = self.manager.window_weight();
        self.anchor_cost_per_weight = (weight > 0.0).then(|| self.manager.window_cost() / weight);
        self.reference_profile = self.manager.window_profile();
    }
}

/// One table's scan endpoint, handed to an external serve front (see
/// [`TableFleet::scan_target`]).
#[derive(Clone)]
pub struct ScanTarget {
    /// Shared handle to the stored table; valid across repartitions.
    pub table: Arc<StoredTable>,
    /// The simulated disk scans of this table are priced on.
    pub disk: DiskParams,
}

/// What one routed query triggered fleet-wide.
#[derive(Debug)]
pub enum FleetOutcome {
    /// The advise cadence has not come up yet.
    NotDue,
    /// An advise round ran: per visited table (in visit order), the
    /// decision its session produced.
    Round(Vec<(String, RepartitionDecision)>),
}

/// A multi-table serving front end: one [`TableManager`] per table, a
/// router keyed by table name, and a shared advisor budget spent
/// most-drifted-table-first (see the module docs).
pub struct TableFleet {
    cfg: FleetConfig,
    entries: Vec<FleetEntry>,
    by_name: HashMap<String, usize>,
    rr_cursor: usize,
    stats: FleetStats,
}

impl TableFleet {
    /// An empty fleet; add tables with [`TableFleet::add_table`].
    ///
    /// # Panics
    /// If `cfg.advise_every` is zero (no round would ever run).
    pub fn new(cfg: FleetConfig) -> TableFleet {
        assert!(cfg.advise_every > 0, "advise cadence must be positive");
        TableFleet {
            cfg,
            entries: Vec::new(),
            by_name: HashMap::new(),
            rr_cursor: 0,
            stats: FleetStats::default(),
        }
    }

    /// Register `manager` under the routing key `name`.
    ///
    /// # Panics
    /// If `name` is already registered (fleet composition is programmer
    /// configuration, not runtime input).
    pub fn add_table(&mut self, name: impl Into<String>, manager: TableManager) {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "fleet already serves a table named `{name}`"
        );
        self.by_name.insert(name.clone(), self.entries.len());
        self.entries.push(FleetEntry {
            name,
            manager,
            anchor_cost_per_weight: None,
            reference_profile: Vec::new(),
        });
    }

    /// Number of tables served.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff no table is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Routing keys, in registration order.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.name.as_str())
    }

    /// The manager serving `table`, if registered.
    pub fn manager(&self, table: &str) -> Option<&TableManager> {
        self.by_name.get(table).map(|&i| &self.entries[i].manager)
    }

    /// Current drift score of `table`, if registered.
    pub fn drift_of(&self, table: &str) -> Option<DriftScore> {
        self.by_name.get(table).map(|&i| self.entries[i].drift())
    }

    /// Fleet-wide counters.
    pub fn stats(&self) -> &FleetStats {
        &self.stats
    }

    /// The fleet's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Route one query to `table`, serve it there, and — every
    /// `advise_every` routed queries — run one advise round over the whole
    /// fleet.
    ///
    /// `Err` means the query was not served: no table is registered under
    /// `table` ([`ModelError::UnknownTable`]) or the query does not fit
    /// that table's schema. Un-served queries advance neither the window
    /// nor the cadence.
    pub fn execute(
        &mut self,
        table: &str,
        query: Query,
    ) -> Result<(ScanResult, FleetOutcome), ModelError> {
        let idx = *self
            .by_name
            .get(table)
            .ok_or_else(|| ModelError::UnknownTable {
                table: table.to_string(),
            })?;
        let result = self.entries[idx].manager.serve(query)?;
        self.stats.queries += 1;
        let outcome = if self.stats.queries.is_multiple_of(self.cfg.advise_every) {
            FleetOutcome::Round(self.advise_round())
        } else {
            FleetOutcome::NotDue
        };
        Ok((result, outcome))
    }

    /// Everything an external serve front needs to scan `table` without
    /// holding a reference to the fleet: the shared table handle (scans
    /// pin immutable snapshots off it, so a concurrent repartition never
    /// stalls them) and the simulated disk the scan is priced on. A
    /// network tier resolves its routes once at startup — the handle
    /// stays valid across every later layout move — then folds each
    /// served scan back via [`TableFleet::record_scan`].
    pub fn scan_target(&self, table: &str) -> Result<ScanTarget, ModelError> {
        let idx = *self
            .by_name
            .get(table)
            .ok_or_else(|| ModelError::UnknownTable {
                table: table.to_string(),
            })?;
        let entry = &self.entries[idx];
        Ok(ScanTarget {
            table: entry.manager.table_handle(),
            disk: entry.manager.disk(),
        })
    }

    /// Book one externally-executed scan into the fleet: per-table stats,
    /// realized-payoff accrual, the sliding window that feeds advising,
    /// and the fleet-wide query counter. The scan already happened (on a
    /// serving thread, against a [`TableFleet::scan_target`] snapshot);
    /// `served` is the snapshot it actually pinned. Unlike
    /// [`TableFleet::execute`], recording does **not** consult the advise
    /// cadence — an external front schedules [`TableFleet::advise_round`]
    /// explicitly.
    pub fn record_scan(
        &mut self,
        table: &str,
        query: Query,
        result: &ScanResult,
        served: &TableSnapshot,
    ) -> Result<(), ModelError> {
        let idx = *self
            .by_name
            .get(table)
            .ok_or_else(|| ModelError::UnknownTable {
                table: table.to_string(),
            })?;
        self.entries[idx]
            .manager
            .record_served(query, result, served);
        self.stats.queries += 1;
        Ok(())
    }

    /// Route one ingest batch to `table` ([`TableManager::ingest`]): the
    /// write lands in that table's WAL'd delta, and the grown delta lifts
    /// the table's [`TableManager::window_cost`] — so under drift-first
    /// scheduling, sustained ingest pulls the shared advisor budget toward
    /// the tables accumulating the most un-folded write debt.
    ///
    /// `Err` is [`StorageError::UnknownTable`] when no table is registered
    /// under `table`; other errors are the manager's validation failures.
    /// Ingest advances neither the window nor the advise cadence — only
    /// served queries do.
    pub fn ingest(
        &mut self,
        table: &str,
        batch: &IngestBatch,
    ) -> Result<IngestStats, StorageError> {
        let idx = *self
            .by_name
            .get(table)
            .ok_or_else(|| StorageError::UnknownTable(table.to_string()))?;
        let stats = self.entries[idx].manager.ingest(batch)?;
        self.stats.ingest_batches += 1;
        Ok(stats)
    }

    /// Run one advise round now, regardless of cadence: spend the round
    /// budget across the tables per the configured schedule. Returns the
    /// per-table decisions in visit order (tables with empty windows are
    /// not visited).
    pub fn advise_round(&mut self) -> Vec<(String, RepartitionDecision)> {
        self.stats.rounds += 1;
        let out = match self.cfg.schedule {
            FleetSchedule::SharedDriftFirst => self.round_drift_first(),
            FleetSchedule::EqualSplit => self.round_equal_split(),
            FleetSchedule::RoundRobin => self.round_round_robin(),
        };
        // Re-record the fleet-wide realized-payoff ledger: what the round
        // just invested and what the traffic served so far has paid back.
        let (invested, saved) = self
            .entries
            .iter()
            .map(|e| e.manager.realized_payoff())
            .fold((0.0, 0.0), |(i, s), p| {
                (i + p.invested_io_seconds, s + p.saved_io_seconds)
            });
        self.stats.payoff_invested_io_seconds = invested;
        self.stats.payoff_saved_io_seconds = saved;
        out
    }

    /// Realized payoff ledger of `table`, if registered (see
    /// [`RealizedPayoff`]).
    pub fn realized_payoff(&self, table: &str) -> Option<RealizedPayoff> {
        self.by_name
            .get(table)
            .map(|&i| self.entries[i].manager.realized_payoff())
    }

    /// Drain a routed query batch across `threads` scan workers, then run
    /// `overlap` on the calling thread while the workers are still
    /// scanning — the fleet's serve front. `overlap` gets `&mut self`, so
    /// it can run an [`TableFleet::advise_round`] (with its re-partitions)
    /// *during* the drain; the zero-stall snapshot swap means no worker
    /// ever blocks on a move. Results are folded into the per-table
    /// managers in batch order afterwards, so subsequent advising is
    /// deterministic for a given batch.
    ///
    /// One caveat the single-table report does not have: the generation
    /// span (`min_generation`..`max_generation`) mixes *per-table*
    /// counters, so across tables at different steady-state generations a
    /// spread does **not** imply a re-partition happened mid-drain; use
    /// [`TableFleet::manager`]-level drains when that signal matters.
    ///
    /// Unlike [`TableFleet::execute`], batch serving does **not** consult
    /// the fleet's `advise_every` cadence — schedule rounds explicitly
    /// (run [`TableFleet::advise_round`] in `overlap` or between batches).
    ///
    /// `Err` means some event routes to an unknown table or does not fit
    /// its schema; nothing is served.
    pub fn serve_batch_with<R>(
        &mut self,
        events: &[(String, Query)],
        threads: usize,
        overlap: impl FnOnce(&mut TableFleet) -> R,
    ) -> Result<(ServeBatchReport, R), ModelError> {
        let mut routed = Vec::with_capacity(events.len());
        for (table, query) in events {
            let idx = *self
                .by_name
                .get(table)
                .ok_or_else(|| ModelError::UnknownTable {
                    table: table.clone(),
                })?;
            query.validate(&self.entries[idx].manager.table().schema)?;
            routed.push(idx);
        }
        let tables: Vec<Arc<StoredTable>> = self
            .entries
            .iter()
            .map(|e| e.manager.table_handle())
            .collect();
        let disks: Vec<_> = self.entries.iter().map(|e| e.manager.disk()).collect();
        let queries: Vec<Query> = events.iter().map(|(_, q)| q.clone()).collect();
        let (drained, wall_seconds, overlap_out) =
            crate::serve::drain_batch(&tables, &disks, &routed, &queries, threads, || {
                overlap(self)
            });
        let report = crate::serve::fold_report(&drained, threads, wall_seconds, 0);
        for (i, (_, query)) in events.iter().enumerate() {
            let (result, snapshot) = &drained[i];
            self.entries[routed[i]]
                .manager
                .record_served(query.clone(), result, snapshot);
            self.stats.queries += 1;
        }
        Ok((report, overlap_out))
    }

    /// [`TableFleet::serve_batch_with`] with no overlapped work: a plain
    /// multi-threaded routed drain.
    pub fn serve_batch(
        &mut self,
        events: &[(String, Query)],
        threads: usize,
    ) -> Result<ServeBatchReport, ModelError> {
        self.serve_batch_with(events, threads, |_| ())
            .map(|(report, ())| report)
    }

    /// Tables with something in their window, most drifted first (ties
    /// keep registration order: sort is stable), each with the score it
    /// was ranked by — computed once per round, since scoring runs the
    /// cost model over every table's window.
    fn drift_order(&self) -> Vec<(usize, DriftScore)> {
        let mut order: Vec<(usize, DriftScore)> = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.drift()))
            .filter(|(_, s)| s.cost_regret > f64::NEG_INFINITY)
            .collect();
        order.sort_by(|(_, a), (_, b)| {
            if a.outranks(b) {
                std::cmp::Ordering::Less
            } else if b.outranks(a) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        });
        order
    }

    fn round_drift_first(&mut self) -> Vec<(String, RepartitionDecision)> {
        let floor = self.cfg.drift_floor;
        let order: Vec<usize> = self
            .drift_order()
            .into_iter()
            .filter(|&(i, score)| {
                self.entries[i].anchor_cost_per_weight.is_none()
                    || score.cost_regret >= floor
                    || score.profile_drift >= floor
            })
            .map(|(i, _)| i)
            .collect();
        let mut pool = BudgetPool::new(self.cfg.round_budget);
        let mut out = Vec::with_capacity(order.len());
        for idx in order {
            if pool.is_exhausted() {
                self.stats.sessions_skipped += 1;
                continue;
            }
            let (decision, spent) = self.advise_entry(idx, pool.grant());
            pool.charge(&spent);
            out.push((self.entries[idx].name.clone(), decision));
        }
        out
    }

    fn round_equal_split(&mut self) -> Vec<(String, RepartitionDecision)> {
        let order: Vec<usize> = (0..self.entries.len())
            .filter(|&i| self.entries[i].manager.window_weight() > 0.0)
            .collect();
        if order.is_empty() {
            return Vec::new();
        }
        let slice = self.cfg.round_budget.split(order.len() as u64);
        let mut out = Vec::with_capacity(order.len());
        for idx in order {
            let (decision, _) = self.advise_entry(idx, slice);
            out.push((self.entries[idx].name.clone(), decision));
        }
        out
    }

    fn round_round_robin(&mut self) -> Vec<(String, RepartitionDecision)> {
        let n = self.entries.len();
        for _ in 0..n {
            let idx = self.rr_cursor % n;
            self.rr_cursor += 1;
            if self.entries[idx].manager.window_weight() > 0.0 {
                let (decision, _) = self.advise_entry(idx, self.cfg.round_budget);
                return vec![(self.entries[idx].name.clone(), decision)];
            }
        }
        Vec::new()
    }

    /// Run one session over entry `idx` with `budget`; book the spend and
    /// Run one session over entry `idx` with `budget`; book the spend and
    /// outcome into the fleet counters, and re-anchor the entry's drift —
    /// but only when the advisor really had its say. A session that was
    /// budget-truncated without adopting anything (the 1-step leftover of
    /// a nearly-drained pool) must *not* reset the drift signal: doing so
    /// would hide the table below the drift floor and starve it of the
    /// very budget it still needs. An `Applied` always re-anchors — the
    /// layout changed, so the old anchor prices a layout that no longer
    /// exists (and re-running the same truncated search over the same
    /// window would just reproduce the adopted layout as a `NoChange`).
    fn advise_entry(&mut self, idx: usize, budget: Budget) -> (RepartitionDecision, SessionStats) {
        let entry = &mut self.entries[idx];
        let (decision, spent) = entry.manager.advise_with(budget);
        self.stats.sessions += 1;
        self.stats.steps_spent += spent.steps;
        self.stats.advisor_seconds += spent.elapsed.as_secs_f64();
        match &decision {
            RepartitionDecision::Applied(_) => {
                self.stats.repartitions += 1;
                entry.re_anchor();
            }
            RepartitionDecision::Rejected { .. } => {
                self.stats.rejected_by_payoff += 1;
                if !spent.truncated {
                    entry.re_anchor();
                }
            }
            RepartitionDecision::NoChange => {
                if !spent.truncated {
                    entry.re_anchor();
                }
            }
            RepartitionDecision::Failed { .. } => self.stats.failed_sessions += 1,
            RepartitionDecision::NotDue => unreachable!("sessions always decide"),
        }
        (decision, spent)
    }
}
