//! The mini storage engine: column-group files on a simulated disk.
//!
//! This is the workspace's substitute for the paper's "DBMS-X" (Table 7):
//! a disk-based column(-group) store whose compression cannot be turned
//! off. A table is stored as one file per vertical partition; within a
//! file, each attribute is a compressed column segment.
//!
//! Query runtime is the sum of:
//!
//! * **Simulated I/O** — the paper's seek + scan formulas applied to the
//!   *compressed* file sizes (the buffer is shared among the partitions a
//!   query reads, exactly as in the cost model); using simulated rather
//!   than physical I/O removes the host machine's page cache and SSD from
//!   the experiment, matching the paper's cold-cache spinning-disk testbed.
//! * **Measured CPU** — actual decode + tuple reconstruction work. If any
//!   segment of a partition is variable-width encoded, reading *any*
//!   attribute of that partition decodes the *whole* partition (rows are
//!   not independently addressable) — this is precisely the effect the
//!   paper blames for HillClimb trailing Column under DBMS-X's default
//!   varying-length encoding, and why forcing fixed-width dictionary
//!   narrows the gap.
//!
//! # The snapshot model
//!
//! The file set of a [`StoredTable`] is an immutable [`TableSnapshot`]
//! behind a lock-free [`crate::snapshot::SnapshotCell`]. Scans take
//! `&self`: they [`StoredTable::snapshot`]-pin the current snapshot and
//! read only that, so any number of threads scan concurrently.
//! [`StoredTable::repartition`] also takes `&self`: it is
//! **double-buffered** — the re-sliced partition files are built *beside*
//! the live ones (files whose attribute group is unchanged are shared by
//! `Arc` pointer, not copied), then published with one atomic swap.
//! In-flight scans finish on the snapshot they pinned; scans that start
//! after the swap see the new layout; nobody ever waits for the move.
//!
//! Scans run through the vectorized [`crate::executor::ScanExecutor`];
//! the original materialize-then-iterate path survives here as
//! [`scan_naive`], the oracle both the property tests and `scan_bench`
//! compare against.

use crate::compress::{decode, default_codec, encode, Codec, EncodedColumn};
use crate::data::{ColumnData, TableData};
use crate::snapshot::SnapshotCell;
use slicer_cost::DiskParams;
use slicer_model::{AttrId, AttrSet, Partitioning, TableSchema};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Compression policy for a stored table (paper Table 7's two rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompressionPolicy {
    /// DBMS-X default: delta for ints/dates, LZ for text/decimals
    /// (variable-width).
    Default,
    /// Force dictionary encoding everywhere (fixed-width).
    Dictionary,
    /// No compression (plain fixed-width); not in the paper's table but
    /// useful as a control.
    None,
}

impl CompressionPolicy {
    fn codec_for(self, kind: slicer_model::AttrKind) -> Codec {
        match self {
            CompressionPolicy::Default => default_codec(kind),
            CompressionPolicy::Dictionary => Codec::Dictionary,
            CompressionPolicy::None => Codec::Plain,
        }
    }
}

/// One stored vertical partition: compressed segments per attribute.
#[derive(Debug)]
pub struct PartitionFile {
    /// The attributes stored in this file.
    pub attrs: AttrSet,
    /// Segment per attribute, in ascending attribute order.
    pub segments: Vec<(AttrId, EncodedColumn)>,
    /// Number of rows in every segment.
    pub rows: usize,
}

impl PartitionFile {
    /// Compressed size on disk in bytes.
    pub fn stored_bytes(&self) -> u64 {
        self.segments.iter().map(|(_, s)| s.stored_bytes()).sum()
    }

    /// True iff every segment is fixed-width (rows individually
    /// addressable).
    pub fn fixed_width(&self) -> bool {
        self.segments.iter().all(|(_, s)| s.codec.fixed_width())
    }
}

/// One immutable, atomically-published version of a table's file set.
///
/// A snapshot never changes after publication: scans pin one and read it
/// to completion regardless of concurrent re-partitioning. Files are
/// `Arc`-shared, so a re-partition that keeps a group carries the file
/// over by pointer.
#[derive(Debug)]
pub struct TableSnapshot {
    /// The layout this snapshot stores.
    pub layout: Partitioning,
    /// One file per partition, in layout order.
    pub files: Vec<Arc<PartitionFile>>,
    /// Publication counter: 0 for the initial load, +1 per re-partition.
    /// Strictly monotone per table — warm scan scratch keys off it.
    pub generation: u64,
}

impl TableSnapshot {
    /// Total compressed bytes across all partition files.
    pub fn stored_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.stored_bytes()).sum()
    }
}

/// A table stored under one layout and compression policy.
///
/// All read *and* re-slice operations take `&self` (see the module docs);
/// share a table across threads with `Arc<StoredTable>`.
pub struct StoredTable {
    /// Table schema.
    pub schema: TableSchema,
    /// The compression policy the segments were encoded under (reused by
    /// [`StoredTable::repartition`]).
    pub policy: CompressionPolicy,
    /// The current snapshot (lock-free swap on publication).
    snapshot: SnapshotCell<TableSnapshot>,
    /// Serializes re-partitions (builders); readers never touch it.
    move_lock: Mutex<()>,
    /// The in-memory source data (kept for the naive oracle's decode
    /// templates).
    source: TableData,
}

/// Outcome of one [`StoredTable::repartition`]: what moved, what was
/// reused by pointer, and what the move cost — measured CPU for the
/// decode + re-encode work, and modeled disk seconds for the incremental
/// read-old/write-new I/O (the amortization advantage over a full reload,
/// which always rewrites every byte).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepartitionStats {
    /// Partition files carried over untouched (same attribute group in the
    /// old and new layout; shared by `Arc`, not copied).
    pub files_kept: usize,
    /// Partition files re-sliced from decoded segments.
    pub files_rebuilt: usize,
    /// Compressed bytes of the old files that had to be read back.
    pub bytes_reread: u64,
    /// Compressed bytes of the rebuilt files written out.
    pub bytes_rewritten: u64,
    /// Modeled seek + read + write seconds for the incremental move on the
    /// simulated disk.
    pub io_seconds: f64,
    /// Measured decode + re-encode seconds on the host CPU.
    pub cpu_seconds: f64,
}

impl StoredTable {
    /// Compress `data` under `layout` and `policy`.
    pub fn load(
        schema: &TableSchema,
        data: &TableData,
        layout: &Partitioning,
        policy: CompressionPolicy,
    ) -> StoredTable {
        assert_eq!(
            data.columns.len(),
            schema.attr_count(),
            "data/schema mismatch"
        );
        let files: Vec<Arc<PartitionFile>> = layout
            .partitions()
            .iter()
            .map(|p| {
                let segments: Vec<(AttrId, EncodedColumn)> = p
                    .iter()
                    .map(|a| {
                        let kind = schema.attribute(a).kind;
                        let col = &data.columns[a.index()];
                        (a, encode(col, policy.codec_for(kind)))
                    })
                    .collect();
                Arc::new(PartitionFile {
                    attrs: *p,
                    segments,
                    rows: data.rows,
                })
            })
            .collect();
        StoredTable {
            schema: schema.clone(),
            policy,
            snapshot: SnapshotCell::new(Arc::new(TableSnapshot {
                layout: layout.clone(),
                files,
                generation: 0,
            })),
            move_lock: Mutex::new(()),
            source: data.clone(),
        }
    }

    /// Pin the current snapshot. The returned snapshot is immutable and
    /// valid forever; a concurrent [`StoredTable::repartition`] publishes
    /// a *new* snapshot without disturbing pinned ones.
    pub fn snapshot(&self) -> Arc<TableSnapshot> {
        self.snapshot.load()
    }

    /// The layout currently stored (of the snapshot current *now*; a
    /// concurrent re-partition may publish a newer one at any moment).
    pub fn layout(&self) -> Partitioning {
        self.snapshot.load().layout.clone()
    }

    /// Re-slice the table into `layout` **without stalling readers**:
    /// partition files whose attribute group is unchanged are carried into
    /// the new snapshot by `Arc` pointer; every other new partition is
    /// rebuilt by decoding the segments it needs from the current files
    /// and re-encoding them under the table's compression policy. The new
    /// snapshot is then published with one atomic swap — scans already in
    /// flight finish on the snapshot they pinned, scans that start after
    /// the swap see the new layout, and neither ever blocks on the move.
    /// Concurrent re-partitions serialize against each other (the move
    /// lock orders builders, never readers).
    ///
    /// Because every codec round-trips losslessly, the result is
    /// indistinguishable from a fresh [`StoredTable::load`] of the same
    /// data under the new layout — identical stored bytes, identical scan
    /// checksums and `bytes_read` (property-tested in
    /// `tests/repartition.rs`) — but the *move* only touches the files
    /// whose grouping actually changed, which is what makes repeated
    /// incremental re-partitioning amortize where full reloads do not.
    ///
    /// The returned [`RepartitionStats`] reports measured CPU seconds and
    /// the modeled incremental I/O on `disk` (read back the consulted old
    /// files, write out the rebuilt new ones, one seek per file touched).
    pub fn repartition(&self, layout: &Partitioning, disk: &DiskParams) -> RepartitionStats {
        let _builder = self.move_lock.lock().unwrap_or_else(|e| e.into_inner());
        let start = Instant::now();
        let base = self.snapshot.load();
        // Where each attribute currently lives: (file, segment) indices.
        let mut seg_of: Vec<Option<(usize, usize)>> = vec![None; self.schema.attr_count()];
        for (fi, f) in base.files.iter().enumerate() {
            for (si, (aid, _)) in f.segments.iter().enumerate() {
                seg_of[aid.index()] = Some((fi, si));
            }
        }
        let mut reread: Vec<bool> = vec![false; base.files.len()];
        let mut files_kept = 0usize;
        let mut files_rebuilt = 0usize;
        let mut bytes_rewritten = 0u64;
        let new_files: Vec<Arc<PartitionFile>> = layout
            .partitions()
            .iter()
            .map(|p| {
                // Unchanged group: share the live file by pointer without
                // touching a single byte. (Disjointness guarantees no
                // other new partition needs any of its segments.)
                if let Some(f) = base.files.iter().find(|f| f.attrs == *p) {
                    files_kept += 1;
                    return Arc::clone(f);
                }
                files_rebuilt += 1;
                let segments: Vec<(AttrId, EncodedColumn)> = p
                    .iter()
                    .map(|a| {
                        let (fi, si) = seg_of[a.index()].expect("attr stored somewhere");
                        reread[fi] = true;
                        let template = &self.source.columns[a.index()];
                        let col = decode(&base.files[fi].segments[si].1, template);
                        let kind = self.schema.attribute(a).kind;
                        (a, encode(&col, self.policy.codec_for(kind)))
                    })
                    .collect();
                let file = PartitionFile {
                    attrs: *p,
                    segments,
                    rows: self.source.rows,
                };
                bytes_rewritten += file.stored_bytes();
                Arc::new(file)
            })
            .collect();
        let bytes_reread: u64 = base
            .files
            .iter()
            .zip(&reread)
            .filter(|&(_, &r)| r)
            .map(|(f, _)| f.stored_bytes())
            .sum();
        let files_reread = reread.iter().filter(|&&r| r).count();
        let block = disk.block_size;
        let blocks_bytes = |s: u64| s.div_ceil(block) * block;
        let io_seconds = disk.seek_time * (files_reread + files_rebuilt) as f64
            + blocks_bytes(bytes_reread) as f64 / disk.read_bandwidth
            + blocks_bytes(bytes_rewritten) as f64 / disk.write_bandwidth;
        // Publish: one atomic swap. In-flight scans keep their pins.
        self.snapshot.store(Arc::new(TableSnapshot {
            layout: layout.clone(),
            files: new_files,
            generation: base.generation + 1,
        }));
        RepartitionStats {
            files_kept,
            files_rebuilt,
            bytes_reread,
            bytes_rewritten,
            io_seconds,
            cpu_seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// Price [`StoredTable::repartition`] without moving a byte: the exact
    /// [`RepartitionStats`] the move *would* report (`cpu_seconds` aside,
    /// which is a measurement and prices as zero).
    ///
    /// The plan can be exact because segments are encoded per attribute
    /// column, independent of grouping: a rebuilt partition's re-encoded
    /// segment is byte-identical to the segment the attribute already has,
    /// so `bytes_rewritten` is a sum over existing segment sizes
    /// (`repartition_plan_matches_actual_move` pins the equality). This is
    /// the incremental-move payoff price: adopting a layout that keeps most
    /// files costs far less than `layout_creation_time`'s full
    /// read-everything-write-everything estimate.
    pub fn repartition_plan(&self, layout: &Partitioning, disk: &DiskParams) -> RepartitionStats {
        let base = self.snapshot.load();
        let mut seg_bytes: Vec<u64> = vec![0; self.schema.attr_count()];
        let mut file_of: Vec<usize> = vec![0; self.schema.attr_count()];
        for (fi, f) in base.files.iter().enumerate() {
            for (aid, enc) in &f.segments {
                seg_bytes[aid.index()] = enc.stored_bytes();
                file_of[aid.index()] = fi;
            }
        }
        let mut reread: Vec<bool> = vec![false; base.files.len()];
        let mut files_kept = 0usize;
        let mut files_rebuilt = 0usize;
        let mut bytes_rewritten = 0u64;
        for p in layout.partitions() {
            if base.files.iter().any(|f| f.attrs == *p) {
                files_kept += 1;
                continue;
            }
            files_rebuilt += 1;
            for a in p.iter() {
                reread[file_of[a.index()]] = true;
                bytes_rewritten += seg_bytes[a.index()];
            }
        }
        let bytes_reread: u64 = base
            .files
            .iter()
            .zip(&reread)
            .filter(|&(_, &r)| r)
            .map(|(f, _)| f.stored_bytes())
            .sum();
        let files_reread = reread.iter().filter(|&&r| r).count();
        let block = disk.block_size;
        let blocks_bytes = |s: u64| s.div_ceil(block) * block;
        let io_seconds = disk.seek_time * (files_reread + files_rebuilt) as f64
            + blocks_bytes(bytes_reread) as f64 / disk.read_bandwidth
            + blocks_bytes(bytes_rewritten) as f64 / disk.write_bandwidth;
        RepartitionStats {
            files_kept,
            files_rebuilt,
            bytes_reread,
            bytes_rewritten,
            io_seconds,
            cpu_seconds: 0.0,
        }
    }

    /// Number of rows stored (equal across all partition files and
    /// snapshots).
    pub fn rows(&self) -> usize {
        self.source.rows
    }

    /// Total compressed bytes across the current snapshot's files.
    pub fn stored_bytes(&self) -> u64 {
        self.snapshot.load().stored_bytes()
    }

    /// Compression ratio versus the uncompressed fixed-width size.
    pub fn compression_ratio(&self) -> f64 {
        let raw = self.schema.row_size() * self.source.rows as u64;
        raw as f64 / self.stored_bytes().max(1) as f64
    }

    /// The decode template for an attribute (naive decode paths only; the
    /// vectorized executor never needs it).
    pub(crate) fn template(&self, a: AttrId) -> &ColumnData {
        &self.source.columns[a.index()]
    }
}

/// Outcome of one scan: checksum over the projected values (the "result"),
/// simulated I/O seconds and measured CPU seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanResult {
    /// Order-independent FNV-mix checksum over all projected cell values.
    pub checksum: u64,
    /// Simulated seek + scan time on the modeled disk.
    pub io_seconds: f64,
    /// Measured decode + reconstruction time on the host CPU.
    pub cpu_seconds: f64,
    /// Compressed bytes the scan read.
    pub bytes_read: u64,
}

/// Simulated seek+scan seconds for reading `files` together under `disk`,
/// sharing the buffer proportionally to compressed file size (the cost
/// model's rule, applied to physical bytes).
fn simulated_io(disk: &DiskParams, sizes: &[u64]) -> f64 {
    let total: u64 = sizes.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let b = disk.block_size;
    sizes
        .iter()
        .filter(|&&s| s > 0)
        .map(|&s| {
            let blocks = s.div_ceil(b);
            let buff = disk.buffer_size * s / total;
            let blocks_buff = (buff / b).max(1);
            let seeks = blocks.div_ceil(blocks_buff);
            disk.seek_time * seeks as f64 + (blocks * b) as f64 / disk.read_bandwidth
        })
        .sum()
}

/// The files a scan of `referenced` touches in `snapshot` (unified
/// granularity: whole file), with their total compressed bytes and
/// simulated I/O seconds. Shared by [`scan_naive`] and the vectorized
/// executor so both report bit-identical I/O accounting.
pub(crate) fn touched_and_io(
    snapshot: &TableSnapshot,
    referenced: AttrSet,
    disk: &DiskParams,
) -> (Vec<usize>, u64, f64) {
    let touched: Vec<usize> = snapshot
        .files
        .iter()
        .enumerate()
        .filter(|(_, f)| f.attrs.intersects(referenced))
        .map(|(i, _)| i)
        .collect();
    let sizes: Vec<u64> = touched
        .iter()
        .map(|&i| snapshot.files[i].stored_bytes())
        .collect();
    let io_seconds = simulated_io(disk, &sizes);
    let bytes_read = sizes.iter().sum();
    (touched, bytes_read, io_seconds)
}

/// [`scan_naive`] against an explicitly pinned snapshot: the correctness
/// oracle for concurrent serving, where the caller must compare a scan
/// against the *same* snapshot it raced (`table` supplies the decode
/// templates; it need not still be serving `snapshot`).
pub fn scan_naive_snapshot(
    table: &StoredTable,
    snapshot: &TableSnapshot,
    referenced: AttrSet,
    disk: &DiskParams,
) -> ScanResult {
    let (touched, bytes_read, io_seconds) = touched_and_io(snapshot, referenced, disk);

    let start = Instant::now();
    // Decode: fixed-width files decode only referenced segments;
    // variable-width files must decode everything.
    let mut decoded: Vec<(AttrId, ColumnData)> = Vec::new();
    for &fi in &touched {
        let f = &snapshot.files[fi];
        let need_all = !f.fixed_width();
        for (aid, seg) in &f.segments {
            if need_all || referenced.contains(*aid) {
                let col = decode(seg, table.template(*aid));
                if referenced.contains(*aid) {
                    decoded.push((*aid, col));
                } else {
                    // Decoded only to walk the variable-width segment;
                    // materialization cost is the point, result unused.
                    std::hint::black_box(&col);
                }
            }
        }
    }
    decoded.sort_by_key(|(a, _)| *a);

    // Tuple reconstruction: stitch the projected row together row-by-row
    // (per-tuple query processing, as in the cost model's assumptions).
    let rows = table.rows();
    let mut checksum = 0u64;
    for r in 0..rows {
        let mut row_hash = 0xcbf29ce484222325u64;
        for (_, col) in &decoded {
            row_hash ^= col.fingerprint(r);
            row_hash = row_hash.wrapping_mul(0x100000001b3);
        }
        checksum ^= row_hash.rotate_left((r % 63) as u32);
    }
    let cpu_seconds = start.elapsed().as_secs_f64();

    ScanResult {
        checksum,
        io_seconds,
        cpu_seconds,
        bytes_read,
    }
}

/// The original one-shot scan: heap-materialize every referenced column,
/// then reconstruct tuples row-by-row through enum dispatch. Pins the
/// table's current snapshot and scans that.
///
/// Kept verbatim as the correctness oracle and the `scan_bench` baseline;
/// production scans go through [`crate::executor::ScanExecutor`] (or its
/// [`crate::executor::scan`] convenience wrapper).
pub fn scan_naive(table: &StoredTable, referenced: AttrSet, disk: &DiskParams) -> ScanResult {
    let snapshot = table.snapshot();
    scan_naive_snapshot(table, &snapshot, referenced, disk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::generate_table;
    use crate::executor::scan;
    use slicer_model::AttrKind;

    fn schema() -> TableSchema {
        TableSchema::builder("Orders", 2000)
            .attr("OrdersKey", 4, AttrKind::Int)
            .attr("CustKey", 4, AttrKind::Int)
            .attr("TotalPrice", 8, AttrKind::Decimal)
            .attr("OrderDate", 4, AttrKind::Date)
            .attr("ShipMode", 10, AttrKind::Text)
            .attr("Comment", 79, AttrKind::Text)
            .build()
            .unwrap()
    }

    fn fixture(policy: CompressionPolicy, layout: Partitioning) -> StoredTable {
        let s = schema();
        let data = generate_table(&s, 2000, 42);
        StoredTable::load(&s, &data, &layout, policy)
    }

    #[test]
    fn checksums_agree_across_layouts_and_policies() {
        // The scan oracle: same data, same projection → same checksum, no
        // matter how it is stored.
        let s = schema();
        let referenced = s.attr_set(&["CustKey", "ShipMode"]).unwrap();
        let disk = DiskParams::paper_testbed();
        let mut sums = Vec::new();
        for policy in [
            CompressionPolicy::None,
            CompressionPolicy::Default,
            CompressionPolicy::Dictionary,
        ] {
            for layout in [
                Partitioning::row(&s),
                Partitioning::column(&s),
                Partitioning::new(
                    &s,
                    vec![
                        s.attr_set(&["OrdersKey", "CustKey"]).unwrap(),
                        s.attr_set(&["TotalPrice", "OrderDate"]).unwrap(),
                        s.attr_set(&["ShipMode", "Comment"]).unwrap(),
                    ],
                )
                .unwrap(),
            ] {
                let t = fixture(policy, layout);
                sums.push(scan(&t, referenced, &disk).checksum);
            }
        }
        assert!(
            sums.windows(2).all(|w| w[0] == w[1]),
            "checksums diverge: {sums:?}"
        );
    }

    #[test]
    fn compression_shrinks_storage() {
        let s = schema();
        let t_none = fixture(CompressionPolicy::None, Partitioning::column(&s));
        let t_def = fixture(CompressionPolicy::Default, Partitioning::column(&s));
        assert!(t_def.stored_bytes() < t_none.stored_bytes());
        assert!(
            t_def.compression_ratio() > 1.2,
            "{}",
            t_def.compression_ratio()
        );
    }

    #[test]
    fn column_layout_reads_fewer_bytes_than_row() {
        let s = schema();
        let disk = DiskParams::paper_testbed();
        let referenced = s.attr_set(&["CustKey"]).unwrap();
        let row = fixture(CompressionPolicy::Default, Partitioning::row(&s));
        let col = fixture(CompressionPolicy::Default, Partitioning::column(&s));
        let r = scan(&row, referenced, &disk);
        let c = scan(&col, referenced, &disk);
        assert!(c.bytes_read < r.bytes_read / 2);
        assert!(c.io_seconds <= r.io_seconds);
    }

    #[test]
    fn varlen_groups_force_whole_partition_decode() {
        // Under the Default (varlen) policy, scanning one attribute of a
        // two-attribute group decodes both segments; under Dictionary it
        // decodes only the referenced one. Verify via CPU asymmetry on a
        // group holding the wide Comment.
        let s = schema();
        let layout = Partitioning::new(
            &s,
            vec![
                s.attr_set(&["OrdersKey", "Comment"]).unwrap(),
                s.attr_set(&["CustKey", "TotalPrice", "OrderDate", "ShipMode"])
                    .unwrap(),
            ],
        )
        .unwrap();
        let referenced = s.attr_set(&["OrdersKey"]).unwrap();
        let t_def = fixture(CompressionPolicy::Default, layout.clone());
        assert!(!t_def.snapshot().files[0].fixed_width());
        let t_dict = fixture(CompressionPolicy::Dictionary, layout);
        assert!(t_dict.snapshot().files[0].fixed_width());
        // Both still produce the same answer.
        let disk = DiskParams::paper_testbed();
        assert_eq!(
            scan(&t_def, referenced, &disk).checksum,
            scan(&t_dict, referenced, &disk).checksum
        );
    }

    #[test]
    fn simulated_io_uses_buffer_sharing() {
        let disk = DiskParams::paper_testbed().with_buffer_size(16 * 1024);
        // One 1 MB file vs two 512 KB files: the split pays more seeks.
        let single = simulated_io(&disk, &[1 << 20]);
        let split = simulated_io(&disk, &[1 << 19, 1 << 19]);
        assert!(split > single, "split {split} vs single {single}");
        assert_eq!(simulated_io(&disk, &[]), 0.0);
    }

    #[test]
    fn repartition_matches_fresh_load() {
        let s = schema();
        let data = generate_table(&s, 2000, 42);
        let disk = DiskParams::paper_testbed();
        for policy in [
            CompressionPolicy::None,
            CompressionPolicy::Default,
            CompressionPolicy::Dictionary,
        ] {
            let t = StoredTable::load(&s, &data, &Partitioning::row(&s), policy);
            let target = Partitioning::new(
                &s,
                vec![
                    s.attr_set(&["OrdersKey", "CustKey"]).unwrap(),
                    s.attr_set(&["TotalPrice", "OrderDate"]).unwrap(),
                    s.attr_set(&["ShipMode", "Comment"]).unwrap(),
                ],
            )
            .unwrap();
            let stats = t.repartition(&target, &disk);
            assert_eq!(stats.files_kept, 0);
            assert_eq!(stats.files_rebuilt, 3);
            assert!(stats.io_seconds > 0.0);
            let fresh = StoredTable::load(&s, &data, &target, policy);
            assert_eq!(t.layout(), fresh.layout());
            assert_eq!(t.stored_bytes(), fresh.stored_bytes());
            for (a, b) in t.snapshot().files.iter().zip(&fresh.snapshot().files) {
                assert_eq!(a.attrs, b.attrs);
                assert_eq!(a.stored_bytes(), b.stored_bytes());
            }
            for referenced in [
                s.attr_set(&["CustKey"]).unwrap(),
                s.attr_set(&["OrdersKey", "ShipMode"]).unwrap(),
                s.all_attrs(),
            ] {
                let r1 = scan(&t, referenced, &disk);
                let r2 = scan(&fresh, referenced, &disk);
                assert_eq!(r1.checksum, r2.checksum);
                assert_eq!(r1.bytes_read, r2.bytes_read);
                assert_eq!(r1.io_seconds.to_bits(), r2.io_seconds.to_bits());
            }
        }
    }

    #[test]
    fn repartition_keeps_unchanged_files_by_pointer() {
        let s = schema();
        let data = generate_table(&s, 2000, 42);
        let disk = DiskParams::paper_testbed();
        let start = Partitioning::new(
            &s,
            vec![
                s.attr_set(&["OrdersKey", "CustKey"]).unwrap(),
                s.attr_set(&["TotalPrice", "OrderDate", "ShipMode", "Comment"])
                    .unwrap(),
            ],
        )
        .unwrap();
        let t = StoredTable::load(&s, &data, &start, CompressionPolicy::Default);
        let before = t.snapshot();
        // Split only the second group; the first file must be carried over.
        let target = Partitioning::new(
            &s,
            vec![
                s.attr_set(&["OrdersKey", "CustKey"]).unwrap(),
                s.attr_set(&["TotalPrice", "OrderDate"]).unwrap(),
                s.attr_set(&["ShipMode", "Comment"]).unwrap(),
            ],
        )
        .unwrap();
        let stats = t.repartition(&target, &disk);
        assert_eq!(stats.files_kept, 1);
        assert_eq!(stats.files_rebuilt, 2);
        let after = t.snapshot();
        assert_eq!(after.generation, before.generation + 1);
        // The kept file is the *same allocation*, not a copy.
        assert!(
            Arc::ptr_eq(&before.files[0], &after.files[0]),
            "unchanged group must be shared by pointer"
        );
        // Only the split file is re-read; the kept one costs nothing.
        let fresh = StoredTable::load(&s, &data, &start, CompressionPolicy::Default);
        assert_eq!(stats.bytes_reread, fresh.snapshot().files[1].stored_bytes());
        assert!(stats.bytes_rewritten < t.stored_bytes());
    }

    #[test]
    fn repartition_to_same_layout_is_free() {
        let s = schema();
        let data = generate_table(&s, 2000, 42);
        let disk = DiskParams::paper_testbed();
        let layout = Partitioning::column(&s);
        let t = StoredTable::load(&s, &data, &layout, CompressionPolicy::Dictionary);
        let before = t.stored_bytes();
        let stats = t.repartition(&layout.clone(), &disk);
        assert_eq!(stats.files_rebuilt, 0);
        assert_eq!(stats.files_kept, s.attr_count());
        assert_eq!(stats.bytes_reread, 0);
        assert_eq!(stats.bytes_rewritten, 0);
        assert_eq!(stats.io_seconds, 0.0);
        assert_eq!(t.stored_bytes(), before);
    }

    #[test]
    fn pinned_snapshot_survives_a_repartition() {
        let s = schema();
        let data = generate_table(&s, 2000, 42);
        let disk = DiskParams::paper_testbed();
        let t = StoredTable::load(
            &s,
            &data,
            &Partitioning::row(&s),
            CompressionPolicy::Default,
        );
        let referenced = s.attr_set(&["CustKey", "ShipMode"]).unwrap();
        let pinned = t.snapshot();
        let before = scan_naive_snapshot(&t, &pinned, referenced, &disk);
        t.repartition(&Partitioning::column(&s), &disk);
        // The pinned snapshot still scans exactly as before the move…
        let after = scan_naive_snapshot(&t, &pinned, referenced, &disk);
        assert_eq!(before.checksum, after.checksum);
        assert_eq!(before.bytes_read, after.bytes_read);
        assert_eq!(before.io_seconds.to_bits(), after.io_seconds.to_bits());
        // …while the live table serves the new layout (fewer bytes for a
        // two-column projection under Column than under Row).
        let live = scan_naive(&t, referenced, &disk);
        assert_eq!(live.checksum, before.checksum);
        assert!(live.bytes_read < before.bytes_read);
    }

    #[test]
    fn untouched_partitions_are_not_read() {
        let s = schema();
        let disk = DiskParams::paper_testbed();
        let col = fixture(CompressionPolicy::None, Partitioning::column(&s));
        let r = scan(&col, s.attr_set(&["OrderDate"]).unwrap(), &disk);
        let date_file: u64 = col.snapshot().files[3].stored_bytes();
        assert_eq!(r.bytes_read, date_file);
    }
}
