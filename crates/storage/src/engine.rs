//! The mini storage engine: column-group files on a simulated disk.
//!
//! This is the workspace's substitute for the paper's "DBMS-X" (Table 7):
//! a disk-based column(-group) store whose compression cannot be turned
//! off. A table is stored as one file per vertical partition; within a
//! file, each attribute is a compressed column segment.
//!
//! Query runtime is the sum of:
//!
//! * **Simulated I/O** — the paper's seek + scan formulas applied to the
//!   *compressed* file sizes (the buffer is shared among the partitions a
//!   query reads, exactly as in the cost model); using simulated rather
//!   than physical I/O removes the host machine's page cache and SSD from
//!   the experiment, matching the paper's cold-cache spinning-disk testbed.
//! * **Measured CPU** — actual decode + tuple reconstruction work. If any
//!   segment of a partition is variable-width encoded, reading *any*
//!   attribute of that partition decodes the *whole* partition (rows are
//!   not independently addressable) — this is precisely the effect the
//!   paper blames for HillClimb trailing Column under DBMS-X's default
//!   varying-length encoding, and why forcing fixed-width dictionary
//!   narrows the gap.
//!
//! # The snapshot model
//!
//! The file set of a [`StoredTable`] is an immutable [`TableSnapshot`]
//! behind a lock-free [`crate::snapshot::SnapshotCell`]. Scans take
//! `&self`: they [`StoredTable::snapshot`]-pin the current snapshot and
//! read only that, so any number of threads scan concurrently.
//! [`StoredTable::repartition`] also takes `&self`: it is
//! **double-buffered** — the re-sliced partition files are built *beside*
//! the live ones (files whose attribute group is unchanged are shared by
//! `Arc` pointer, not copied), then published with one atomic swap.
//! In-flight scans finish on the snapshot they pinned; scans that start
//! after the swap see the new layout; nobody ever waits for the move.
//!
//! Scans run through the vectorized [`crate::executor::ScanExecutor`];
//! the original materialize-then-iterate path survives here as
//! [`scan_naive`], the oracle both the property tests and `scan_bench`
//! compare against.

use crate::backend::{CrashPoint, Dir, StorageError};
use crate::compress::{decode, default_codec, encode, Codec, EncodedColumn};
use crate::data::{ColumnData, TableData, FNV_OFFSET, FNV_PRIME};
use crate::delta::{fold_data, validate_batch, DeltaState, IngestBatch};
use crate::prune::{clause_matches, literal_fingerprint, literal_key, ColumnPrune, CHUNK_ROWS};
use crate::snapshot::SnapshotCell;
use crate::wal::{
    decode_manifest, decode_partition_file, decode_wal, encode_manifest, encode_partition_file,
    encode_record, part_name, wal_name, Manifest, RecoveryReport, WalRecord, MANIFEST,
};
use slicer_cost::DiskParams;
use slicer_model::{AttrId, AttrKind, AttrSet, Partitioning, Predicate, Query, TableSchema};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Compression policy for a stored table (paper Table 7's two rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompressionPolicy {
    /// DBMS-X default: delta for ints/dates, LZ for text/decimals
    /// (variable-width).
    Default,
    /// Force dictionary encoding everywhere (fixed-width).
    Dictionary,
    /// No compression (plain fixed-width); not in the paper's table but
    /// useful as a control.
    None,
}

impl CompressionPolicy {
    fn codec_for(self, kind: slicer_model::AttrKind) -> Codec {
        match self {
            CompressionPolicy::Default => default_codec(kind),
            CompressionPolicy::Dictionary => Codec::Dictionary,
            CompressionPolicy::None => Codec::Plain,
        }
    }
}

/// One stored vertical partition: compressed segments per attribute.
#[derive(Debug)]
pub struct PartitionFile {
    /// The attributes stored in this file.
    pub attrs: AttrSet,
    /// Segment per attribute, in ascending attribute order.
    pub segments: Vec<(AttrId, EncodedColumn)>,
    /// Number of rows in every segment.
    pub rows: usize,
    /// Per-segment pruning metadata (zone maps + bloom filters), aligned
    /// with `segments`. Built at encode time, persisted in the file image,
    /// carried by pointer when an incremental repartition keeps the file.
    pub prune: Vec<ColumnPrune>,
}

impl PartitionFile {
    /// Compressed size on disk in bytes.
    pub fn stored_bytes(&self) -> u64 {
        self.segments.iter().map(|(_, s)| s.stored_bytes()).sum()
    }

    /// True iff every segment is fixed-width (rows individually
    /// addressable).
    pub fn fixed_width(&self) -> bool {
        self.segments.iter().all(|(_, s)| s.codec.fixed_width())
    }
}

/// One immutable, atomically-published version of a table's file set.
///
/// A snapshot never changes after publication: scans pin one and read it
/// to completion regardless of concurrent re-partitioning. Files are
/// `Arc`-shared, so a re-partition that keeps a group carries the file
/// over by pointer.
#[derive(Debug)]
pub struct TableSnapshot {
    /// The layout this snapshot stores.
    pub layout: Partitioning,
    /// One file per partition, in layout order.
    pub files: Vec<Arc<PartitionFile>>,
    /// Publication counter: 0 for the initial load, +1 per publication
    /// (ingest batch or re-partition). Strictly monotone per table.
    pub generation: u64,
    /// The row-store delta pinned with this snapshot: appended rows and
    /// tombstones not yet folded into the partition files. A scan merges
    /// it over the base columns; a repartition folds it in.
    pub delta: DeltaState,
    /// The decoded base data (decode templates + fold source). Pinned
    /// per snapshot so a fold never disturbs in-flight scans.
    pub(crate) source: Arc<TableData>,
}

impl TableSnapshot {
    /// Total compressed bytes across all partition files (delta excluded;
    /// see [`DeltaState::stored_bytes`]).
    pub fn stored_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.stored_bytes()).sum()
    }

    /// Rows in the columnar base (before merging the delta).
    pub fn base_rows(&self) -> usize {
        self.source.rows
    }

    /// Rows a scan of this snapshot observes: base plus appended minus
    /// tombstoned.
    pub fn visible_rows(&self) -> usize {
        self.source.rows + self.delta.rows() - self.delta.deletes()
    }

    /// The measured fraction of rows a pruning scan of `predicate` still
    /// has to read under this snapshot: base rows in chunks the zone
    /// maps / bloom filters keep, plus every delta row (the row store is
    /// never chunk-prunable), over all rows. `1.0` when nothing prunes;
    /// this is the honest `kept_fraction` to stamp on a
    /// [`Query`] so the cost layer prices what the executor will do.
    pub fn prune_fraction(&self, predicate: &Predicate) -> f64 {
        let rows = self.source.rows;
        let total = rows + self.delta.rows();
        if total == 0 {
            return 1.0;
        }
        let keep = chunk_keep_mask(self, predicate);
        let kept: usize = keep
            .iter()
            .enumerate()
            .filter(|&(_, &k)| k)
            .map(|(c, _)| ((c + 1) * CHUNK_ROWS).min(rows) - c * CHUNK_ROWS)
            .sum();
        (kept + self.delta.rows()) as f64 / total as f64
    }
}

/// Per-chunk keep verdicts for `predicate` over `snapshot`'s base rows.
/// Every partition file of a snapshot stores the same rows in the same
/// order, so chunk `c` covers rows `[c·CHUNK_ROWS, (c+1)·CHUNK_ROWS)` in
/// *every* file and the per-clause verdicts AND into one global mask. A
/// clause whose attribute carries no usable stats (foreign or hand-built
/// file) conservatively keeps everything.
pub(crate) fn chunk_keep_mask(snapshot: &TableSnapshot, predicate: &Predicate) -> Vec<bool> {
    let nchunks = snapshot.source.rows.div_ceil(CHUNK_ROWS);
    let mut keep = vec![true; nchunks];
    for clause in &predicate.clauses {
        let stats = snapshot.files.iter().find_map(|f| {
            f.segments
                .iter()
                .position(|(aid, _)| *aid == clause.attr)
                .and_then(|si| f.prune.get(si))
        });
        let Some(prune) = stats else { continue };
        if prune.chunks.len() != nchunks {
            continue;
        }
        let key = literal_key(&clause.value);
        let fp = literal_fingerprint(&clause.value);
        for (c, k) in keep.iter_mut().enumerate() {
            *k = *k && prune.chunks[c].may_match(clause.op, key, fp);
        }
    }
    keep
}

/// One replicable mutation, emitted to a [`ReplTap`] the moment its
/// snapshot is published. Generations are gap-free per table (each
/// publication bumps by exactly one), so a subscriber can detect a
/// missed event.
#[derive(Debug, Clone)]
pub struct ReplEvent {
    /// The generation the mutation published (snapshot generation after
    /// the swap).
    pub generation: u64,
    /// What mutated.
    pub op: ReplOp,
}

/// The mutation payload of a [`ReplEvent`]: enough to replay the change
/// on another [`StoredTable`] holding the same prior state.
#[derive(Debug, Clone)]
pub enum ReplOp {
    /// An ingest batch became durable and visible (already validated and
    /// normalized — replaying it through [`StoredTable::ingest`] is
    /// deterministic).
    Ingest(IngestBatch),
    /// A repartition published `layout` (folding any pending delta).
    /// Replaying it through [`StoredTable::repartition`] reproduces the
    /// stored bytes exactly — repartition is property-tested
    /// byte-identical to a fresh load of the same data.
    Publish(Partitioning),
}

/// Observer for replicable mutations; see [`StoredTable::set_repl_tap`].
pub type ReplTap = Arc<dyn Fn(ReplEvent) + Send + Sync>;

/// A table stored under one layout and compression policy.
///
/// All read *and* re-slice operations take `&self` (see the module docs);
/// share a table across threads with `Arc<StoredTable>`.
pub struct StoredTable {
    /// Table schema.
    pub schema: TableSchema,
    /// The compression policy the segments were encoded under (reused by
    /// [`StoredTable::repartition`]).
    pub policy: CompressionPolicy,
    /// The current snapshot (lock-free swap on publication).
    snapshot: SnapshotCell<TableSnapshot>,
    /// Serializes writers (ingest and re-partition builders) and guards
    /// the durable bookkeeping; readers never touch it. `None` for a
    /// purely in-memory table.
    move_lock: Mutex<Option<DurableState>>,
    /// The durable backend, if this table persists itself.
    dir: Option<Arc<dyn Dir>>,
    /// Replication observer, fired under the move lock after each
    /// snapshot publication — so a subscriber sees mutations in exactly
    /// the order their generations published, gap-free.
    repl_tap: Mutex<Option<ReplTap>>,
}

/// Mutable durable bookkeeping, guarded by the move lock.
#[derive(Debug)]
struct DurableState {
    /// The active WAL file.
    wal_file: String,
    /// Sequence number the next WAL record will carry.
    next_seq: u64,
    /// Backend file name of each partition file, aligned with the current
    /// snapshot's `files` (kept files keep their names across moves).
    file_names: Vec<String>,
}

/// Outcome of one [`StoredTable::repartition`]: what moved, what was
/// reused by pointer, and what the move cost — measured CPU for the
/// decode + re-encode work, and modeled disk seconds for the incremental
/// read-old/write-new I/O (the amortization advantage over a full reload,
/// which always rewrites every byte).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepartitionStats {
    /// Partition files carried over untouched (same attribute group in the
    /// old and new layout; shared by `Arc`, not copied).
    pub files_kept: usize,
    /// Partition files re-sliced from decoded segments.
    pub files_rebuilt: usize,
    /// Compressed bytes of the old files that had to be read back.
    pub bytes_reread: u64,
    /// Compressed bytes of the rebuilt files written out.
    pub bytes_rewritten: u64,
    /// Modeled seek + read + write seconds for the incremental move on the
    /// simulated disk.
    pub io_seconds: f64,
    /// Measured decode + re-encode seconds on the host CPU.
    pub cpu_seconds: f64,
    /// Delta rows folded into the rebuilt files by this move (0 when the
    /// delta was empty).
    pub delta_rows_folded: usize,
    /// Raw delta bytes (rows + tombstones) the fold consumed.
    pub delta_bytes_folded: u64,
}

/// Outcome of one [`StoredTable::ingest`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IngestStats {
    /// Rows appended by the batch.
    pub rows_appended: u64,
    /// Rows tombstoned by the batch.
    pub rows_deleted: u64,
    /// Bytes appended to the WAL (0 for an in-memory table).
    pub wal_bytes: u64,
    /// Modeled seek + write seconds for the WAL append on the simulated
    /// disk (0 for an in-memory table).
    pub io_seconds: f64,
    /// Delta rows pending after this batch (including earlier batches).
    pub delta_rows: u64,
    /// Raw delta bytes pending after this batch — what every scan now
    /// additionally reads until a repartition folds the delta.
    pub delta_bytes: u64,
}

/// Encode `data` into one [`PartitionFile`] per partition of `layout`.
fn build_files(
    schema: &TableSchema,
    data: &TableData,
    layout: &Partitioning,
    policy: CompressionPolicy,
) -> Vec<Arc<PartitionFile>> {
    layout
        .partitions()
        .iter()
        .map(|p| {
            let mut prune = Vec::new();
            let segments: Vec<(AttrId, EncodedColumn)> = p
                .iter()
                .map(|a| {
                    let kind = schema.attribute(a).kind;
                    let col = &data.columns[a.index()];
                    prune.push(ColumnPrune::build(col));
                    (a, encode(col, policy.codec_for(kind)))
                })
                .collect();
            Arc::new(PartitionFile {
                attrs: *p,
                segments,
                rows: data.rows,
                prune,
            })
        })
        .collect()
}

/// The empty decode template for an attribute kind.
fn empty_template(kind: AttrKind) -> ColumnData {
    match kind {
        AttrKind::Int => ColumnData::Int(Vec::new()),
        AttrKind::Decimal => ColumnData::Decimal(Vec::new()),
        AttrKind::Date => ColumnData::Date(Vec::new()),
        AttrKind::Text => ColumnData::Text(Vec::new()),
    }
}

impl StoredTable {
    /// Compress `data` under `layout` and `policy`, in memory only (no
    /// durability; a crash loses the table). See [`StoredTable::create`]
    /// for the durable variant.
    pub fn load(
        schema: &TableSchema,
        data: &TableData,
        layout: &Partitioning,
        policy: CompressionPolicy,
    ) -> StoredTable {
        assert_eq!(
            data.columns.len(),
            schema.attr_count(),
            "data/schema mismatch"
        );
        let files = build_files(schema, data, layout, policy);
        StoredTable {
            schema: schema.clone(),
            policy,
            snapshot: SnapshotCell::new(Arc::new(TableSnapshot {
                layout: layout.clone(),
                files,
                generation: 0,
                delta: DeltaState::default(),
                source: Arc::new(data.clone()),
            })),
            move_lock: Mutex::new(None),
            dir: None,
            repl_tap: Mutex::new(None),
        }
    }

    /// Install `tap` as the table's replication observer. The tap is
    /// invoked once per snapshot publication ([`StoredTable::ingest`] and
    /// [`StoredTable::repartition`]), *while the move lock is held*, so
    /// events arrive in publication order with gap-free generations. Keep
    /// the closure cheap — it runs on the writer's critical path; a
    /// replication source should append to an in-memory log and return.
    pub fn set_repl_tap(&self, tap: ReplTap) {
        *self.repl_tap.lock().unwrap_or_else(|e| e.into_inner()) = Some(tap);
    }

    /// Remove the replication observer installed by
    /// [`StoredTable::set_repl_tap`], if any.
    pub fn clear_repl_tap(&self) {
        *self.repl_tap.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }

    /// Fire the replication tap, if one is installed. Callers hold the
    /// move lock, which is what serializes events per table.
    fn emit_repl(&self, event: ReplEvent) {
        let tap = self
            .repl_tap
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        if let Some(tap) = tap {
            tap(event);
        }
    }

    /// Compress `data` under `layout` and `policy` and persist it into
    /// `dir`: every partition file, an empty generation-0 WAL (holding its
    /// `Publish` record), and the manifest that roots them. The table is
    /// immediately durable — [`StoredTable::open`] on the same `dir`
    /// reproduces it bit-for-bit.
    pub fn create(
        schema: &TableSchema,
        data: &TableData,
        layout: &Partitioning,
        policy: CompressionPolicy,
        dir: Arc<dyn Dir>,
    ) -> Result<StoredTable, StorageError> {
        let table = StoredTable::load(schema, data, layout, policy);
        let snapshot = table.snapshot.load();
        let mut file_names = Vec::with_capacity(snapshot.files.len());
        for (i, f) in snapshot.files.iter().enumerate() {
            let name = part_name(0, i);
            dir.write_atomic(&name, &encode_partition_file(f))?;
            file_names.push(name);
        }
        let wal_file = wal_name(0);
        dir.write_atomic(
            &wal_file,
            &encode_record(0, &WalRecord::Publish { generation: 0 }),
        )?;
        dir.write_atomic(
            MANIFEST,
            &encode_manifest(&Manifest {
                generation: 0,
                policy,
                wal_file: wal_file.clone(),
                first_seq: 0,
                files: file_names.clone(),
            }),
        )?;
        *table.move_lock.lock().unwrap_or_else(|e| e.into_inner()) = Some(DurableState {
            wal_file,
            next_seq: 1,
            file_names,
        });
        Ok(StoredTable {
            dir: Some(dir),
            ..table
        })
    }

    /// Reopen a table persisted in `dir`: decode the manifest's partition
    /// files into the last published snapshot, replay the WAL's ingest
    /// records over it (recovering past a torn tail, which is truncated
    /// off so later appends land on intact bytes), and sweep files a
    /// crash may have orphaned. Returns the table plus the
    /// [`RecoveryReport`] the caller is expected to log.
    pub fn open(
        schema: &TableSchema,
        dir: Arc<dyn Dir>,
    ) -> Result<(StoredTable, RecoveryReport), StorageError> {
        let manifest_bytes = dir
            .read(MANIFEST)?
            .ok_or_else(|| StorageError::Corrupt("missing manifest".into()))?;
        let manifest = decode_manifest(&manifest_bytes)?;
        // Decode the partition files and rebuild the base columns.
        let mut files = Vec::with_capacity(manifest.files.len());
        for name in &manifest.files {
            let bytes = dir.read(name)?.ok_or_else(|| {
                StorageError::Corrupt(format!("manifest references missing file {name}"))
            })?;
            files.push(Arc::new(decode_partition_file(&bytes)?));
        }
        let sets: Vec<AttrSet> = files.iter().map(|f| f.attrs).collect();
        let layout = Partitioning::new(schema, sets)
            .map_err(|e| StorageError::Corrupt(format!("persisted layout invalid: {e}")))?;
        let rows = files.first().map_or(0, |f| f.rows);
        if files.iter().any(|f| f.rows != rows) {
            return Err(StorageError::Corrupt(
                "partition files disagree on row count".into(),
            ));
        }
        let mut columns = vec![None; schema.attr_count()];
        for f in &files {
            for (aid, seg) in &f.segments {
                if aid.index() >= columns.len() {
                    return Err(StorageError::Corrupt(format!(
                        "segment for out-of-schema attribute {aid}"
                    )));
                }
                let template = empty_template(schema.attribute(*aid).kind);
                columns[aid.index()] = Some(decode(seg, &template));
            }
        }
        let columns: Vec<ColumnData> = columns
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                c.ok_or_else(|| StorageError::Corrupt(format!("no segment stores attribute {i}")))
            })
            .collect::<Result<_, _>>()?;
        let source = Arc::new(TableData { columns, rows });

        // Replay the WAL over the published snapshot.
        let wal_bytes = dir.read(&manifest.wal_file)?.ok_or_else(|| {
            StorageError::Corrupt(format!("missing WAL file {}", manifest.wal_file))
        })?;
        let (records, next_seq, torn) = decode_wal(&wal_bytes, manifest.first_seq);
        match records.first() {
            Some(WalRecord::Publish { generation }) if *generation == manifest.generation => {}
            other => {
                return Err(StorageError::Corrupt(format!(
                    "WAL does not open with the manifest's Publish record (found {other:?})"
                )));
            }
        }
        if let Some(t) = &torn {
            // Truncate the torn suffix so future appends extend intact
            // bytes, not garbage.
            dir.write_atomic(&manifest.wal_file, &wal_bytes[..t.valid_bytes])?;
        }
        let mut delta = DeltaState::default();
        let mut wal_records = 0u64;
        let mut rows_appended = 0u64;
        let mut rows_deleted = 0u64;
        for record in &records[1..] {
            let WalRecord::Ingest { appends, deletes } = record else {
                return Err(StorageError::Corrupt(
                    "unexpected Publish record mid-WAL".into(),
                ));
            };
            let batch = IngestBatch {
                appends: appends.clone(),
                deletes: deletes.clone(),
            };
            let next_row_id = rows as u64 + delta.rows() as u64;
            rows_appended += batch.appended_rows() as u64;
            rows_deleted += batch.deletes.len() as u64;
            delta = delta.with_batch(&batch, next_row_id);
            wal_records += 1;
        }

        // Sweep orphans a crash between publication and truncation left
        // behind: superseded WALs and unreferenced partition files.
        let mut orphans_removed = 0usize;
        for name in dir.list()? {
            let ours = name.starts_with("wal-") || name.starts_with("part-");
            let live = name == manifest.wal_file || manifest.files.contains(&name);
            if ours && !live {
                dir.remove(&name)?;
                orphans_removed += 1;
            }
        }

        let report = RecoveryReport {
            generation: manifest.generation,
            wal_records,
            rows_appended,
            rows_deleted,
            orphans_removed,
            torn,
        };
        let table = StoredTable {
            schema: schema.clone(),
            policy: manifest.policy,
            snapshot: SnapshotCell::new(Arc::new(TableSnapshot {
                layout,
                files,
                generation: manifest.generation,
                delta,
                source,
            })),
            move_lock: Mutex::new(Some(DurableState {
                wal_file: manifest.wal_file,
                next_seq,
                file_names: manifest.files,
            })),
            dir: Some(dir),
            repl_tap: Mutex::new(None),
        };
        Ok((table, report))
    }

    /// Apply one [`IngestBatch`]: validate and normalize it, make it
    /// durable (one WAL record — the batch is applied all-or-nothing, and
    /// a torn append of an unacknowledged batch recovers to "never
    /// happened"), then publish a new snapshot whose delta includes it.
    /// Readers never stall: the partition files are untouched and shared
    /// by pointer; scans that pinned the previous snapshot finish on it.
    ///
    /// Writers serialize on the move lock (an ingest cannot interleave
    /// with a repartition's fold). The returned [`IngestStats`] carries
    /// the modeled WAL I/O on `disk` and the delta backlog the table now
    /// carries.
    pub fn ingest(
        &self,
        batch: &IngestBatch,
        disk: &DiskParams,
    ) -> Result<IngestStats, StorageError> {
        let mut state = self.move_lock.lock().unwrap_or_else(|e| e.into_inner());
        let base = self.snapshot.load();
        let total_rows = (base.source.rows + base.delta.rows()) as u64;
        let normalized = validate_batch(&self.schema, batch, total_rows, &base.delta)?;
        if normalized.is_empty() {
            return Ok(IngestStats::default());
        }
        let mut wal_bytes = 0u64;
        if let (Some(durable), Some(dir)) = (state.as_mut(), self.dir.as_ref()) {
            let record = WalRecord::Ingest {
                appends: normalized.appends.clone(),
                deletes: normalized.deletes.clone(),
            };
            let bytes = encode_record(durable.next_seq, &record);
            wal_bytes = bytes.len() as u64;
            dir.append(&durable.wal_file, &bytes)?;
            durable.next_seq += 1;
            dir.crash_point(CrashPoint::AfterWalAppend);
        }
        let delta = base.delta.with_batch(&normalized, total_rows);
        let stats = IngestStats {
            rows_appended: normalized.appended_rows() as u64,
            rows_deleted: normalized.deletes.len() as u64,
            wal_bytes,
            io_seconds: if wal_bytes > 0 {
                let block = disk.block_size;
                disk.seek_time + (wal_bytes.div_ceil(block) * block) as f64 / disk.write_bandwidth
            } else {
                0.0
            },
            delta_rows: delta.rows() as u64,
            delta_bytes: delta.stored_bytes(),
        };
        self.snapshot.store(Arc::new(TableSnapshot {
            layout: base.layout.clone(),
            files: base.files.clone(),
            generation: base.generation + 1,
            delta,
            source: Arc::clone(&base.source),
        }));
        self.emit_repl(ReplEvent {
            generation: base.generation + 1,
            op: ReplOp::Ingest(normalized),
        });
        Ok(stats)
    }

    /// Pin the current snapshot. The returned snapshot is immutable and
    /// valid forever; a concurrent [`StoredTable::repartition`] publishes
    /// a *new* snapshot without disturbing pinned ones.
    pub fn snapshot(&self) -> Arc<TableSnapshot> {
        self.snapshot.load()
    }

    /// The layout currently stored (of the snapshot current *now*; a
    /// concurrent re-partition may publish a newer one at any moment).
    pub fn layout(&self) -> Partitioning {
        self.snapshot.load().layout.clone()
    }

    /// Re-slice the table into `layout` **without stalling readers**:
    /// partition files whose attribute group is unchanged are carried into
    /// the new snapshot by `Arc` pointer; every other new partition is
    /// rebuilt by decoding the segments it needs from the current files
    /// and re-encoding them under the table's compression policy. The new
    /// snapshot is then published with one atomic swap — scans already in
    /// flight finish on the snapshot they pinned, scans that start after
    /// the swap see the new layout, and neither ever blocks on the move.
    /// Concurrent re-partitions serialize against each other (the move
    /// lock orders builders, never readers).
    ///
    /// Because every codec round-trips losslessly, the result is
    /// indistinguishable from a fresh [`StoredTable::load`] of the same
    /// data under the new layout — identical stored bytes, identical scan
    /// checksums and `bytes_read` (property-tested in
    /// `tests/repartition.rs`) — but the *move* only touches the files
    /// whose grouping actually changed, which is what makes repeated
    /// incremental re-partitioning amortize where full reloads do not.
    ///
    /// The returned [`RepartitionStats`] reports measured CPU seconds and
    /// the modeled incremental I/O on `disk` (read back the consulted old
    /// files, write out the rebuilt new ones, one seek per file touched).
    ///
    /// # Folding the delta
    ///
    /// When the table carries a non-empty delta, the move doubles as
    /// compaction: the rebuilt files are encoded from the *merged* rows
    /// (base minus tombstones, plus surviving appends — appends touch
    /// every column, so every partition is rebuilt), the published
    /// snapshot starts with an empty delta, and the stats charge the fold
    /// (delta read, full rewrite) to this move. For a durable table, delta
    /// truncation and snapshot publication are atomic: the new partition
    /// files and a fresh WAL are written *first*, then the manifest swings
    /// in one [`Dir::write_atomic`] — a crash on either side of the swing
    /// recovers to a consistent generation, never to a half-fold
    /// (property-tested in `tests/crash_recovery.rs` via [`CrashPoint`]).
    pub fn repartition(&self, layout: &Partitioning, disk: &DiskParams) -> RepartitionStats {
        let mut state = self.move_lock.lock().unwrap_or_else(|e| e.into_inner());
        let start = Instant::now();
        let base = self.snapshot.load();
        let fold = !base.delta.is_empty();
        let files_kept;
        let files_rebuilt;
        let files_reread;
        let bytes_reread;
        let mut bytes_rewritten = 0u64;
        let new_source;
        let new_files: Vec<Arc<PartitionFile>>;
        if fold {
            // Appended rows touch every column: every partition is
            // re-encoded from the merged data, old files and the delta are
            // all read back.
            let folded = Arc::new(fold_data(&base.source, &base.delta));
            new_files = build_files(&self.schema, &folded, layout, self.policy);
            new_source = folded;
            files_kept = 0;
            files_rebuilt = new_files.len();
            files_reread = base.files.len();
            bytes_reread = base.stored_bytes() + base.delta.stored_bytes();
            bytes_rewritten = new_files.iter().map(|f| f.stored_bytes()).sum();
        } else {
            // Where each attribute currently lives: (file, segment)
            // indices.
            let mut seg_of: Vec<Option<(usize, usize)>> = vec![None; self.schema.attr_count()];
            for (fi, f) in base.files.iter().enumerate() {
                for (si, (aid, _)) in f.segments.iter().enumerate() {
                    seg_of[aid.index()] = Some((fi, si));
                }
            }
            let mut reread: Vec<bool> = vec![false; base.files.len()];
            let mut kept = 0usize;
            let mut rebuilt = 0usize;
            new_files = layout
                .partitions()
                .iter()
                .map(|p| {
                    // Unchanged group: share the live file by pointer
                    // without touching a single byte. (Disjointness
                    // guarantees no other new partition needs any of its
                    // segments.)
                    if let Some(f) = base.files.iter().find(|f| f.attrs == *p) {
                        kept += 1;
                        return Arc::clone(f);
                    }
                    rebuilt += 1;
                    let mut prune = Vec::new();
                    let segments: Vec<(AttrId, EncodedColumn)> = p
                        .iter()
                        .map(|a| {
                            let (fi, si) = seg_of[a.index()].expect("attr stored somewhere");
                            reread[fi] = true;
                            let template = &base.source.columns[a.index()];
                            let col = decode(&base.files[fi].segments[si].1, template);
                            let kind = self.schema.attribute(a).kind;
                            prune.push(ColumnPrune::build(&col));
                            (a, encode(&col, self.policy.codec_for(kind)))
                        })
                        .collect();
                    let file = PartitionFile {
                        attrs: *p,
                        segments,
                        rows: base.source.rows,
                        prune,
                    };
                    bytes_rewritten += file.stored_bytes();
                    Arc::new(file)
                })
                .collect();
            files_kept = kept;
            files_rebuilt = rebuilt;
            bytes_reread = base
                .files
                .iter()
                .zip(&reread)
                .filter(|&(_, &r)| r)
                .map(|(f, _)| f.stored_bytes())
                .sum();
            files_reread = reread.iter().filter(|&&r| r).count();
            new_source = Arc::clone(&base.source);
        }
        let block = disk.block_size;
        let blocks_bytes = |s: u64| s.div_ceil(block) * block;
        // The fold pays one extra seek for the delta/WAL read-back.
        let io_seconds = disk.seek_time * (files_reread + files_rebuilt + usize::from(fold)) as f64
            + blocks_bytes(bytes_reread) as f64 / disk.read_bandwidth
            + blocks_bytes(bytes_rewritten) as f64 / disk.write_bandwidth;

        // Durable publication: rebuilt files and the next generation's WAL
        // land first, then the manifest swings atomically; only then are
        // the superseded WAL and unreferenced files removed.
        if let (Some(durable), Some(dir)) = (state.as_mut(), self.dir.as_ref()) {
            let generation = base.generation + 1;
            let mut names = Vec::with_capacity(new_files.len());
            let mut wrote_one = false;
            for (i, f) in new_files.iter().enumerate() {
                if let Some(pos) = base.files.iter().position(|old| Arc::ptr_eq(old, f)) {
                    names.push(durable.file_names[pos].clone());
                    continue;
                }
                let name = part_name(generation, i);
                dir.write_atomic(&name, &encode_partition_file(f))
                    .expect("durable store rejected a partition file write");
                names.push(name);
                if !wrote_one {
                    wrote_one = true;
                    dir.crash_point(CrashPoint::MidFold);
                }
            }
            dir.crash_point(CrashPoint::BeforeSnapshotPublish);
            let wal_file = wal_name(generation);
            let first_seq = durable.next_seq;
            dir.write_atomic(
                &wal_file,
                &encode_record(first_seq, &WalRecord::Publish { generation }),
            )
            .expect("durable store rejected a WAL write");
            dir.write_atomic(
                MANIFEST,
                &encode_manifest(&Manifest {
                    generation,
                    policy: self.policy,
                    wal_file: wal_file.clone(),
                    first_seq,
                    files: names.clone(),
                }),
            )
            .expect("durable store rejected the manifest write");
            dir.crash_point(CrashPoint::MidTruncate);
            let old_wal = std::mem::replace(&mut durable.wal_file, wal_file);
            dir.remove(&old_wal)
                .expect("durable store rejected a remove");
            for old in &durable.file_names {
                if !names.contains(old) {
                    dir.remove(old).expect("durable store rejected a remove");
                }
            }
            durable.file_names = names;
            durable.next_seq = first_seq + 1;
        }

        // Publish: one atomic swap. In-flight scans keep their pins.
        self.snapshot.store(Arc::new(TableSnapshot {
            layout: layout.clone(),
            files: new_files,
            generation: base.generation + 1,
            delta: DeltaState::default(),
            source: new_source,
        }));
        self.emit_repl(ReplEvent {
            generation: base.generation + 1,
            op: ReplOp::Publish(layout.clone()),
        });
        RepartitionStats {
            files_kept,
            files_rebuilt,
            bytes_reread,
            bytes_rewritten,
            io_seconds,
            cpu_seconds: start.elapsed().as_secs_f64(),
            delta_rows_folded: base.delta.rows(),
            delta_bytes_folded: if fold { base.delta.stored_bytes() } else { 0 },
        }
    }

    /// Price [`StoredTable::repartition`] without moving a byte: the exact
    /// [`RepartitionStats`] the move *would* report (`cpu_seconds` aside,
    /// which is a measurement and prices as zero).
    ///
    /// The plan can be exact because segments are encoded per attribute
    /// column, independent of grouping: a rebuilt partition's re-encoded
    /// segment is byte-identical to the segment the attribute already has,
    /// so `bytes_rewritten` is a sum over existing segment sizes
    /// (`repartition_plan_matches_actual_move` pins the equality). This is
    /// the incremental-move payoff price: adopting a layout that keeps most
    /// files costs far less than `layout_creation_time`'s full
    /// read-everything-write-everything estimate.
    ///
    /// With a non-empty delta the move folds, and the plan becomes an
    /// *estimate*: every file rebuilds, and the rewritten size of the
    /// merged rows is approximated as current segments + raw delta (the
    /// post-encode size is data-dependent). The payoff gate uses this to
    /// price "repartition now and fold" against the delta's growing scan
    /// tax.
    pub fn repartition_plan(&self, layout: &Partitioning, disk: &DiskParams) -> RepartitionStats {
        let base = self.snapshot.load();
        if !base.delta.is_empty() {
            let delta_bytes = base.delta.stored_bytes();
            let bytes_reread = base.stored_bytes() + delta_bytes;
            let bytes_rewritten = base.stored_bytes() + delta_bytes;
            let block = disk.block_size;
            let blocks_bytes = |s: u64| s.div_ceil(block) * block;
            let io_seconds = disk.seek_time * (base.files.len() + layout.len() + 1) as f64
                + blocks_bytes(bytes_reread) as f64 / disk.read_bandwidth
                + blocks_bytes(bytes_rewritten) as f64 / disk.write_bandwidth;
            return RepartitionStats {
                files_kept: 0,
                files_rebuilt: layout.len(),
                bytes_reread,
                bytes_rewritten,
                io_seconds,
                cpu_seconds: 0.0,
                delta_rows_folded: base.delta.rows(),
                delta_bytes_folded: delta_bytes,
            };
        }
        let mut seg_bytes: Vec<u64> = vec![0; self.schema.attr_count()];
        let mut file_of: Vec<usize> = vec![0; self.schema.attr_count()];
        for (fi, f) in base.files.iter().enumerate() {
            for (aid, enc) in &f.segments {
                seg_bytes[aid.index()] = enc.stored_bytes();
                file_of[aid.index()] = fi;
            }
        }
        let mut reread: Vec<bool> = vec![false; base.files.len()];
        let mut files_kept = 0usize;
        let mut files_rebuilt = 0usize;
        let mut bytes_rewritten = 0u64;
        for p in layout.partitions() {
            if base.files.iter().any(|f| f.attrs == *p) {
                files_kept += 1;
                continue;
            }
            files_rebuilt += 1;
            for a in p.iter() {
                reread[file_of[a.index()]] = true;
                bytes_rewritten += seg_bytes[a.index()];
            }
        }
        let bytes_reread: u64 = base
            .files
            .iter()
            .zip(&reread)
            .filter(|&(_, &r)| r)
            .map(|(f, _)| f.stored_bytes())
            .sum();
        let files_reread = reread.iter().filter(|&&r| r).count();
        let block = disk.block_size;
        let blocks_bytes = |s: u64| s.div_ceil(block) * block;
        let io_seconds = disk.seek_time * (files_reread + files_rebuilt) as f64
            + blocks_bytes(bytes_reread) as f64 / disk.read_bandwidth
            + blocks_bytes(bytes_rewritten) as f64 / disk.write_bandwidth;
        RepartitionStats {
            files_kept,
            files_rebuilt,
            bytes_reread,
            bytes_rewritten,
            io_seconds,
            cpu_seconds: 0.0,
            delta_rows_folded: 0,
            delta_bytes_folded: 0,
        }
    }

    /// Rows currently visible (columnar base plus delta appends minus
    /// tombstones, of the snapshot current *now*).
    pub fn rows(&self) -> usize {
        self.snapshot.load().visible_rows()
    }

    /// Total compressed bytes across the current snapshot's files.
    pub fn stored_bytes(&self) -> u64 {
        self.snapshot.load().stored_bytes()
    }

    /// Raw bytes of the current delta backlog (0 once folded).
    pub fn delta_bytes(&self) -> u64 {
        self.snapshot.load().delta.stored_bytes()
    }

    /// Compression ratio versus the uncompressed fixed-width size of the
    /// columnar base.
    pub fn compression_ratio(&self) -> f64 {
        let snapshot = self.snapshot.load();
        let raw = self.schema.row_size() * snapshot.base_rows() as u64;
        raw as f64 / snapshot.stored_bytes().max(1) as f64
    }

    /// [`TableSnapshot::prune_fraction`] of the snapshot current *now* —
    /// the measured selectivity to stamp on a query's predicate via
    /// [`Predicate::with_kept_fraction`] before costing it.
    pub fn prune_fraction(&self, predicate: &Predicate) -> f64 {
        self.snapshot.load().prune_fraction(predicate)
    }
}

/// Outcome of one scan: checksum over the projected values (the "result"),
/// simulated I/O seconds and measured CPU seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanResult {
    /// Order-independent FNV-mix checksum over all projected cell values.
    pub checksum: u64,
    /// Simulated seek + scan time on the modeled disk.
    pub io_seconds: f64,
    /// Measured decode + reconstruction time on the host CPU.
    pub cpu_seconds: f64,
    /// Compressed bytes the scan read.
    pub bytes_read: u64,
}

/// Simulated seek+scan seconds for reading `files` together under `disk`,
/// sharing the buffer proportionally to compressed file size (the cost
/// model's rule, applied to physical bytes).
fn simulated_io(disk: &DiskParams, sizes: &[u64]) -> f64 {
    let total: u64 = sizes.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let b = disk.block_size;
    sizes
        .iter()
        .filter(|&&s| s > 0)
        .map(|&s| {
            let blocks = s.div_ceil(b);
            let buff = disk.buffer_size * s / total;
            let blocks_buff = (buff / b).max(1);
            let seeks = blocks.div_ceil(blocks_buff);
            disk.seek_time * seeks as f64 + (blocks * b) as f64 / disk.read_bandwidth
        })
        .sum()
}

/// The files a scan of `referenced` touches in `snapshot` (unified
/// granularity: whole file), with their total compressed bytes and
/// simulated I/O seconds. A non-empty delta reads as one extra
/// "file" of its raw row-store bytes — the whole delta, regardless of the
/// projection, because rows are stored row-major there (this is the scan
/// tax the payoff gate prices against folding). Shared by [`scan_naive`]
/// and the vectorized executor so both report bit-identical I/O
/// accounting.
pub(crate) fn touched_and_io(
    snapshot: &TableSnapshot,
    referenced: AttrSet,
    disk: &DiskParams,
) -> (Vec<usize>, u64, f64) {
    let touched: Vec<usize> = snapshot
        .files
        .iter()
        .enumerate()
        .filter(|(_, f)| f.attrs.intersects(referenced))
        .map(|(i, _)| i)
        .collect();
    let mut sizes: Vec<u64> = touched
        .iter()
        .map(|&i| snapshot.files[i].stored_bytes())
        .collect();
    if !snapshot.delta.is_empty() {
        sizes.push(snapshot.delta.stored_bytes());
    }
    let io_seconds = simulated_io(disk, &sizes);
    let bytes_read = sizes.iter().sum();
    (touched, bytes_read, io_seconds)
}

/// [`touched_and_io`] for a *pruning* scan: the select-then-fetch byte
/// accounting both the executor and the cost model charge.
///
/// * Files intersecting the predicate's `drivers` are read in full — the
///   executor decodes every driver segment to evaluate residual clauses
///   over the kept chunks.
/// * Other fixed-width files fetch only the kept chunks: their bytes
///   scale by `kept_rows / rows` (rows are individually addressable, so a
///   skipped chunk's bytes are never touched).
/// * Variable-width non-driver files still read in full — rows are not
///   independently addressable, the whole-partition-decode penalty
///   applies to pruning scans too.
/// * The delta always reads in full; its rows are filtered in memory.
///
/// This is what makes pruning *layout-dependent*: isolating a selective
/// driver column into its own slim group under a fixed-width policy turns
/// every other group into a kept-chunks fetch, which is exactly the shape
/// the skip-aware cost model rewards.
pub(crate) fn touched_and_io_query(
    snapshot: &TableSnapshot,
    referenced: AttrSet,
    drivers: AttrSet,
    keep: &[bool],
    disk: &DiskParams,
) -> (Vec<usize>, u64, f64) {
    let rows = snapshot.source.rows;
    let kept_rows: u64 = keep
        .iter()
        .enumerate()
        .filter(|&(_, &k)| k)
        .map(|(c, _)| (((c + 1) * CHUNK_ROWS).min(rows) - c * CHUNK_ROWS) as u64)
        .sum();
    let touched: Vec<usize> = snapshot
        .files
        .iter()
        .enumerate()
        .filter(|(_, f)| f.attrs.intersects(referenced))
        .map(|(i, _)| i)
        .collect();
    let mut sizes: Vec<u64> = touched
        .iter()
        .map(|&i| {
            let f = &snapshot.files[i];
            let full = f.stored_bytes();
            if f.attrs.intersects(drivers) || !f.fixed_width() {
                full
            } else {
                full * kept_rows / (rows as u64).max(1)
            }
        })
        .collect();
    if !snapshot.delta.is_empty() {
        sizes.push(snapshot.delta.stored_bytes());
    }
    let io_seconds = simulated_io(disk, &sizes);
    let bytes_read = sizes.iter().sum();
    (touched, bytes_read, io_seconds)
}

/// [`scan_naive`] against an explicitly pinned snapshot: the correctness
/// oracle for concurrent serving, where the caller must compare a scan
/// against the *same* snapshot it raced. The snapshot is self-contained
/// (decode templates and delta travel with it), so the table it came from
/// need not still be serving it — or exist.
pub fn scan_naive_snapshot(
    snapshot: &TableSnapshot,
    referenced: AttrSet,
    disk: &DiskParams,
) -> ScanResult {
    let (touched, bytes_read, io_seconds) = touched_and_io(snapshot, referenced, disk);

    let start = Instant::now();
    // Decode: fixed-width files decode only referenced segments;
    // variable-width files must decode everything.
    let mut decoded: Vec<(AttrId, ColumnData)> = Vec::new();
    for &fi in &touched {
        let f = &snapshot.files[fi];
        let need_all = !f.fixed_width();
        for (aid, seg) in &f.segments {
            if need_all || referenced.contains(*aid) {
                let col = decode(seg, &snapshot.source.columns[aid.index()]);
                if referenced.contains(*aid) {
                    decoded.push((*aid, col));
                } else {
                    // Decoded only to walk the variable-width segment;
                    // materialization cost is the point, result unused.
                    std::hint::black_box(&col);
                }
            }
        }
    }
    decoded.sort_by_key(|(a, _)| *a);

    // Tuple reconstruction: stitch the projected row together row-by-row
    // (per-tuple query processing, as in the cost model's assumptions).
    // The checksum folds each row hash rotated by the row's *visible*
    // position — the rank among non-tombstoned rows — so the result is
    // invariant under folding: merging the delta into fresh partition
    // files renumbers rows densely without moving any row's rank.
    // (With no delta, visible position == physical row, reproducing the
    // pre-delta checksum bit-for-bit.)
    let rows = snapshot.source.rows;
    let delta = &snapshot.delta;
    let mut checksum = 0u64;
    let mut visible = 0usize;
    let deleted = delta.deleted_ids();
    let mut next_del = 0usize;
    for r in 0..rows {
        if next_del < deleted.len() && deleted[next_del] == r as u64 {
            next_del += 1;
            continue;
        }
        let mut row_hash = FNV_OFFSET;
        for (_, col) in &decoded {
            row_hash ^= col.fingerprint(r);
            row_hash = row_hash.wrapping_mul(FNV_PRIME);
        }
        checksum ^= row_hash.rotate_left((visible % 63) as u32);
        visible += 1;
    }
    // Delta rows: the row store merges after the base, in append order,
    // hashing the same referenced attributes in the same ascending order.
    for batch in delta.batches() {
        for i in 0..batch.data.rows {
            if delta.is_deleted(batch.first_row_id + i as u64) {
                continue;
            }
            let mut row_hash = FNV_OFFSET;
            for (aid, _) in &decoded {
                row_hash ^= batch.data.columns[aid.index()].fingerprint(i);
                row_hash = row_hash.wrapping_mul(FNV_PRIME);
            }
            checksum ^= row_hash.rotate_left((visible % 63) as u32);
            visible += 1;
        }
    }
    let cpu_seconds = start.elapsed().as_secs_f64();

    ScanResult {
        checksum,
        io_seconds,
        cpu_seconds,
        bytes_read,
    }
}

/// The original one-shot scan: heap-materialize every referenced column,
/// then reconstruct tuples row-by-row through enum dispatch. Pins the
/// table's current snapshot and scans that.
///
/// Kept verbatim as the correctness oracle and the `scan_bench` baseline;
/// production scans go through [`crate::executor::ScanExecutor`] (or its
/// [`crate::executor::scan`] convenience wrapper).
pub fn scan_naive(table: &StoredTable, referenced: AttrSet, disk: &DiskParams) -> ScanResult {
    let snapshot = table.snapshot();
    scan_naive_snapshot(&snapshot, referenced, disk)
}

/// The *predicate* scan oracle: reference semantics for a query that
/// carries a conjunctive predicate, with no pruning whatsoever. Every
/// referenced byte is read and decoded exactly as in
/// [`scan_naive_snapshot`]; rows are then filtered by evaluating the
/// clauses against the decoded **values** (never fingerprints, so hash
/// collisions cannot leak a wrong row in). Qualifying rows fold into the
/// checksum rotated by their rank *among qualifying visible rows* — when
/// the predicate keeps everything this degenerates to the plain visible
/// rank, so a `kept_fraction`-1.0 predicate checksums identically to the
/// pure projection. Delta rows filter the same way, in append order.
///
/// A query with no predicate delegates to [`scan_naive_snapshot`]
/// unchanged. The pruning executor must match this oracle's checksum
/// bit-for-bit while reading no more bytes.
pub fn scan_naive_query_snapshot(
    snapshot: &TableSnapshot,
    query: &Query,
    disk: &DiskParams,
) -> ScanResult {
    let Some(predicate) = &query.predicate else {
        return scan_naive_snapshot(snapshot, query.referenced, disk);
    };
    let referenced = query.referenced;
    let (touched, bytes_read, io_seconds) = touched_and_io(snapshot, referenced, disk);

    let start = Instant::now();
    let mut decoded: Vec<(AttrId, ColumnData)> = Vec::new();
    for &fi in &touched {
        let f = &snapshot.files[fi];
        let need_all = !f.fixed_width();
        for (aid, seg) in &f.segments {
            if need_all || referenced.contains(*aid) {
                let col = decode(seg, &snapshot.source.columns[aid.index()]);
                if referenced.contains(*aid) {
                    decoded.push((*aid, col));
                } else {
                    std::hint::black_box(&col);
                }
            }
        }
    }
    decoded.sort_by_key(|(a, _)| *a);
    // Drivers are validated to be referenced, so every clause's column is
    // among the decoded ones.
    let clause_cols: Vec<usize> = predicate
        .clauses
        .iter()
        .map(|c| {
            decoded
                .binary_search_by_key(&c.attr, |(a, _)| *a)
                .expect("predicate driver must be referenced")
        })
        .collect();

    let rows = snapshot.source.rows;
    let delta = &snapshot.delta;
    let mut checksum = 0u64;
    let mut qualifying = 0usize;
    let deleted = delta.deleted_ids();
    let mut next_del = 0usize;
    for r in 0..rows {
        if next_del < deleted.len() && deleted[next_del] == r as u64 {
            next_del += 1;
            continue;
        }
        let matches = predicate
            .clauses
            .iter()
            .zip(&clause_cols)
            .all(|(c, &ci)| clause_matches(c, &decoded[ci].1, r));
        if !matches {
            continue;
        }
        let mut row_hash = FNV_OFFSET;
        for (_, col) in &decoded {
            row_hash ^= col.fingerprint(r);
            row_hash = row_hash.wrapping_mul(FNV_PRIME);
        }
        checksum ^= row_hash.rotate_left((qualifying % 63) as u32);
        qualifying += 1;
    }
    for batch in delta.batches() {
        for i in 0..batch.data.rows {
            if delta.is_deleted(batch.first_row_id + i as u64) {
                continue;
            }
            let matches = predicate
                .clauses
                .iter()
                .all(|c| clause_matches(c, &batch.data.columns[c.attr.index()], i));
            if !matches {
                continue;
            }
            let mut row_hash = FNV_OFFSET;
            for (aid, _) in &decoded {
                row_hash ^= batch.data.columns[aid.index()].fingerprint(i);
                row_hash = row_hash.wrapping_mul(FNV_PRIME);
            }
            checksum ^= row_hash.rotate_left((qualifying % 63) as u32);
            qualifying += 1;
        }
    }
    let cpu_seconds = start.elapsed().as_secs_f64();

    ScanResult {
        checksum,
        io_seconds,
        cpu_seconds,
        bytes_read,
    }
}

/// [`scan_naive_query_snapshot`] against the table's current snapshot.
pub fn scan_naive_query(table: &StoredTable, query: &Query, disk: &DiskParams) -> ScanResult {
    let snapshot = table.snapshot();
    scan_naive_query_snapshot(&snapshot, query, disk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::generate_table;
    use crate::executor::scan;
    use slicer_model::AttrKind;

    fn schema() -> TableSchema {
        TableSchema::builder("Orders", 2000)
            .attr("OrdersKey", 4, AttrKind::Int)
            .attr("CustKey", 4, AttrKind::Int)
            .attr("TotalPrice", 8, AttrKind::Decimal)
            .attr("OrderDate", 4, AttrKind::Date)
            .attr("ShipMode", 10, AttrKind::Text)
            .attr("Comment", 79, AttrKind::Text)
            .build()
            .unwrap()
    }

    fn fixture(policy: CompressionPolicy, layout: Partitioning) -> StoredTable {
        let s = schema();
        let data = generate_table(&s, 2000, 42);
        StoredTable::load(&s, &data, &layout, policy)
    }

    #[test]
    fn checksums_agree_across_layouts_and_policies() {
        // The scan oracle: same data, same projection → same checksum, no
        // matter how it is stored.
        let s = schema();
        let referenced = s.attr_set(&["CustKey", "ShipMode"]).unwrap();
        let disk = DiskParams::paper_testbed();
        let mut sums = Vec::new();
        for policy in [
            CompressionPolicy::None,
            CompressionPolicy::Default,
            CompressionPolicy::Dictionary,
        ] {
            for layout in [
                Partitioning::row(&s),
                Partitioning::column(&s),
                Partitioning::new(
                    &s,
                    vec![
                        s.attr_set(&["OrdersKey", "CustKey"]).unwrap(),
                        s.attr_set(&["TotalPrice", "OrderDate"]).unwrap(),
                        s.attr_set(&["ShipMode", "Comment"]).unwrap(),
                    ],
                )
                .unwrap(),
            ] {
                let t = fixture(policy, layout);
                sums.push(scan(&t, referenced, &disk).checksum);
            }
        }
        assert!(
            sums.windows(2).all(|w| w[0] == w[1]),
            "checksums diverge: {sums:?}"
        );
    }

    #[test]
    fn compression_shrinks_storage() {
        let s = schema();
        let t_none = fixture(CompressionPolicy::None, Partitioning::column(&s));
        let t_def = fixture(CompressionPolicy::Default, Partitioning::column(&s));
        assert!(t_def.stored_bytes() < t_none.stored_bytes());
        assert!(
            t_def.compression_ratio() > 1.2,
            "{}",
            t_def.compression_ratio()
        );
    }

    #[test]
    fn column_layout_reads_fewer_bytes_than_row() {
        let s = schema();
        let disk = DiskParams::paper_testbed();
        let referenced = s.attr_set(&["CustKey"]).unwrap();
        let row = fixture(CompressionPolicy::Default, Partitioning::row(&s));
        let col = fixture(CompressionPolicy::Default, Partitioning::column(&s));
        let r = scan(&row, referenced, &disk);
        let c = scan(&col, referenced, &disk);
        assert!(c.bytes_read < r.bytes_read / 2);
        assert!(c.io_seconds <= r.io_seconds);
    }

    #[test]
    fn varlen_groups_force_whole_partition_decode() {
        // Under the Default (varlen) policy, scanning one attribute of a
        // two-attribute group decodes both segments; under Dictionary it
        // decodes only the referenced one. Verify via CPU asymmetry on a
        // group holding the wide Comment.
        let s = schema();
        let layout = Partitioning::new(
            &s,
            vec![
                s.attr_set(&["OrdersKey", "Comment"]).unwrap(),
                s.attr_set(&["CustKey", "TotalPrice", "OrderDate", "ShipMode"])
                    .unwrap(),
            ],
        )
        .unwrap();
        let referenced = s.attr_set(&["OrdersKey"]).unwrap();
        let t_def = fixture(CompressionPolicy::Default, layout.clone());
        assert!(!t_def.snapshot().files[0].fixed_width());
        let t_dict = fixture(CompressionPolicy::Dictionary, layout);
        assert!(t_dict.snapshot().files[0].fixed_width());
        // Both still produce the same answer.
        let disk = DiskParams::paper_testbed();
        assert_eq!(
            scan(&t_def, referenced, &disk).checksum,
            scan(&t_dict, referenced, &disk).checksum
        );
    }

    #[test]
    fn simulated_io_uses_buffer_sharing() {
        let disk = DiskParams::paper_testbed().with_buffer_size(16 * 1024);
        // One 1 MB file vs two 512 KB files: the split pays more seeks.
        let single = simulated_io(&disk, &[1 << 20]);
        let split = simulated_io(&disk, &[1 << 19, 1 << 19]);
        assert!(split > single, "split {split} vs single {single}");
        assert_eq!(simulated_io(&disk, &[]), 0.0);
    }

    #[test]
    fn repartition_matches_fresh_load() {
        let s = schema();
        let data = generate_table(&s, 2000, 42);
        let disk = DiskParams::paper_testbed();
        for policy in [
            CompressionPolicy::None,
            CompressionPolicy::Default,
            CompressionPolicy::Dictionary,
        ] {
            let t = StoredTable::load(&s, &data, &Partitioning::row(&s), policy);
            let target = Partitioning::new(
                &s,
                vec![
                    s.attr_set(&["OrdersKey", "CustKey"]).unwrap(),
                    s.attr_set(&["TotalPrice", "OrderDate"]).unwrap(),
                    s.attr_set(&["ShipMode", "Comment"]).unwrap(),
                ],
            )
            .unwrap();
            let stats = t.repartition(&target, &disk);
            assert_eq!(stats.files_kept, 0);
            assert_eq!(stats.files_rebuilt, 3);
            assert!(stats.io_seconds > 0.0);
            let fresh = StoredTable::load(&s, &data, &target, policy);
            assert_eq!(t.layout(), fresh.layout());
            assert_eq!(t.stored_bytes(), fresh.stored_bytes());
            for (a, b) in t.snapshot().files.iter().zip(&fresh.snapshot().files) {
                assert_eq!(a.attrs, b.attrs);
                assert_eq!(a.stored_bytes(), b.stored_bytes());
            }
            for referenced in [
                s.attr_set(&["CustKey"]).unwrap(),
                s.attr_set(&["OrdersKey", "ShipMode"]).unwrap(),
                s.all_attrs(),
            ] {
                let r1 = scan(&t, referenced, &disk);
                let r2 = scan(&fresh, referenced, &disk);
                assert_eq!(r1.checksum, r2.checksum);
                assert_eq!(r1.bytes_read, r2.bytes_read);
                assert_eq!(r1.io_seconds.to_bits(), r2.io_seconds.to_bits());
            }
        }
    }

    #[test]
    fn repartition_keeps_unchanged_files_by_pointer() {
        let s = schema();
        let data = generate_table(&s, 2000, 42);
        let disk = DiskParams::paper_testbed();
        let start = Partitioning::new(
            &s,
            vec![
                s.attr_set(&["OrdersKey", "CustKey"]).unwrap(),
                s.attr_set(&["TotalPrice", "OrderDate", "ShipMode", "Comment"])
                    .unwrap(),
            ],
        )
        .unwrap();
        let t = StoredTable::load(&s, &data, &start, CompressionPolicy::Default);
        let before = t.snapshot();
        // Split only the second group; the first file must be carried over.
        let target = Partitioning::new(
            &s,
            vec![
                s.attr_set(&["OrdersKey", "CustKey"]).unwrap(),
                s.attr_set(&["TotalPrice", "OrderDate"]).unwrap(),
                s.attr_set(&["ShipMode", "Comment"]).unwrap(),
            ],
        )
        .unwrap();
        let stats = t.repartition(&target, &disk);
        assert_eq!(stats.files_kept, 1);
        assert_eq!(stats.files_rebuilt, 2);
        let after = t.snapshot();
        assert_eq!(after.generation, before.generation + 1);
        // The kept file is the *same allocation*, not a copy.
        assert!(
            Arc::ptr_eq(&before.files[0], &after.files[0]),
            "unchanged group must be shared by pointer"
        );
        // Only the split file is re-read; the kept one costs nothing.
        let fresh = StoredTable::load(&s, &data, &start, CompressionPolicy::Default);
        assert_eq!(stats.bytes_reread, fresh.snapshot().files[1].stored_bytes());
        assert!(stats.bytes_rewritten < t.stored_bytes());
    }

    #[test]
    fn repartition_to_same_layout_is_free() {
        let s = schema();
        let data = generate_table(&s, 2000, 42);
        let disk = DiskParams::paper_testbed();
        let layout = Partitioning::column(&s);
        let t = StoredTable::load(&s, &data, &layout, CompressionPolicy::Dictionary);
        let before = t.stored_bytes();
        let stats = t.repartition(&layout.clone(), &disk);
        assert_eq!(stats.files_rebuilt, 0);
        assert_eq!(stats.files_kept, s.attr_count());
        assert_eq!(stats.bytes_reread, 0);
        assert_eq!(stats.bytes_rewritten, 0);
        assert_eq!(stats.io_seconds, 0.0);
        assert_eq!(t.stored_bytes(), before);
    }

    #[test]
    fn pinned_snapshot_survives_a_repartition() {
        let s = schema();
        let data = generate_table(&s, 2000, 42);
        let disk = DiskParams::paper_testbed();
        let t = StoredTable::load(
            &s,
            &data,
            &Partitioning::row(&s),
            CompressionPolicy::Default,
        );
        let referenced = s.attr_set(&["CustKey", "ShipMode"]).unwrap();
        let pinned = t.snapshot();
        let before = scan_naive_snapshot(&pinned, referenced, &disk);
        t.repartition(&Partitioning::column(&s), &disk);
        // The pinned snapshot still scans exactly as before the move…
        let after = scan_naive_snapshot(&pinned, referenced, &disk);
        assert_eq!(before.checksum, after.checksum);
        assert_eq!(before.bytes_read, after.bytes_read);
        assert_eq!(before.io_seconds.to_bits(), after.io_seconds.to_bits());
        // …while the live table serves the new layout (fewer bytes for a
        // two-column projection under Column than under Row).
        let live = scan_naive(&t, referenced, &disk);
        assert_eq!(live.checksum, before.checksum);
        assert!(live.bytes_read < before.bytes_read);
    }

    #[test]
    fn ingest_merges_into_scans_and_fold_preserves_checksums() {
        let s = schema();
        let data = generate_table(&s, 2000, 42);
        let disk = DiskParams::paper_testbed();
        let t = StoredTable::load(
            &s,
            &data,
            &Partitioning::row(&s),
            CompressionPolicy::Default,
        );
        let p = s.attr_set(&["CustKey", "ShipMode"]).unwrap();
        let before = scan_naive(&t, p, &disk);

        // Append 100 rows and delete 50 base rows.
        let extra = generate_table(&s, 100, 7);
        t.ingest(&IngestBatch::append(extra.clone()), &disk)
            .unwrap();
        let stats = t
            .ingest(&IngestBatch::delete((0..50).collect()), &disk)
            .unwrap();
        assert_eq!(stats.rows_deleted, 50);
        assert_eq!(t.rows(), 2000 + 100 - 50);
        let with_delta = scan_naive(&t, p, &disk);
        assert_ne!(with_delta.checksum, before.checksum);
        assert!(
            with_delta.bytes_read > before.bytes_read,
            "delta adds scan bytes"
        );
        // Executor merges identically.
        let exec = crate::executor::scan(&t, p, &disk);
        assert_eq!(exec.checksum, with_delta.checksum);
        assert_eq!(exec.bytes_read, with_delta.bytes_read);
        assert_eq!(exec.io_seconds.to_bits(), with_delta.io_seconds.to_bits());

        // A pinned pre-fold snapshot survives the fold; the folded table
        // scans to the same checksum with the delta tax gone.
        let pinned = t.snapshot();
        let fold_stats = t.repartition(&Partitioning::column(&s), &disk);
        assert_eq!(fold_stats.delta_rows_folded, 100);
        assert!(fold_stats.delta_bytes_folded > 0);
        assert_eq!(fold_stats.files_kept, 0);
        let folded = scan_naive(&t, p, &disk);
        assert_eq!(folded.checksum, with_delta.checksum);
        assert!(t.snapshot().delta.is_empty());
        let replay = scan_naive_snapshot(&pinned, p, &disk);
        assert_eq!(replay.checksum, with_delta.checksum);
        assert_eq!(replay.bytes_read, with_delta.bytes_read);
        // Same answer as loading the merged rows fresh.
        let oracle = StoredTable::load(
            &s,
            &crate::delta::fold_data(&data, &pinned.delta),
            &Partitioning::column(&s),
            CompressionPolicy::Default,
        );
        assert_eq!(scan_naive(&oracle, p, &disk).checksum, folded.checksum);
    }

    #[test]
    fn ingest_rejects_invalid_batches() {
        let s = schema();
        let data = generate_table(&s, 100, 1);
        let disk = DiskParams::paper_testbed();
        let t = StoredTable::load(&s, &data, &Partitioning::row(&s), CompressionPolicy::None);
        assert!(t.ingest(&IngestBatch::delete(vec![100]), &disk).is_err());
        t.ingest(&IngestBatch::delete(vec![5]), &disk).unwrap();
        assert!(t.ingest(&IngestBatch::delete(vec![5]), &disk).is_err());
        let wrong_arity = IngestBatch::append(TableData {
            columns: vec![ColumnData::Int(vec![1])],
            rows: 1,
        });
        assert!(t.ingest(&wrong_arity, &disk).is_err());
    }

    #[test]
    fn durable_create_open_roundtrips_with_wal_replay() {
        use crate::backend::MemDir;
        let s = schema();
        let data = generate_table(&s, 500, 9);
        let disk = DiskParams::paper_testbed();
        let dir = Arc::new(MemDir::new());
        let t = StoredTable::create(
            &s,
            &data,
            &Partitioning::row(&s),
            CompressionPolicy::Default,
            dir.clone(),
        )
        .unwrap();
        let extra = generate_table(&s, 40, 17);
        t.ingest(&IngestBatch::append(extra), &disk).unwrap();
        t.ingest(&IngestBatch::delete(vec![3, 510]), &disk).unwrap();
        let p = s.all_attrs();
        let live = scan_naive(&t, p, &disk);

        let (reopened, report) = StoredTable::open(&s, dir.clone()).unwrap();
        assert_eq!(report.wal_records, 2);
        assert_eq!(report.rows_appended, 40);
        assert_eq!(report.rows_deleted, 2);
        assert_eq!(report.torn, None);
        assert_eq!(reopened.policy, CompressionPolicy::Default);
        assert_eq!(reopened.rows(), t.rows());
        let back = scan_naive(&reopened, p, &disk);
        assert_eq!(back.checksum, live.checksum);
        assert_eq!(back.bytes_read, live.bytes_read);

        // A repartition folds, truncates the WAL, and stays durable.
        reopened.repartition(&Partitioning::column(&s), &disk);
        let after_fold = scan_naive(&reopened, p, &disk);
        assert_eq!(after_fold.checksum, live.checksum);
        let (again, report2) = StoredTable::open(&s, dir).unwrap();
        assert_eq!(report2.wal_records, 0, "fold truncated the delta's WAL");
        assert_eq!(scan_naive(&again, p, &disk).checksum, live.checksum);
        assert!(again.snapshot().delta.is_empty());
    }

    #[test]
    fn predicate_oracle_degenerates_and_filters() {
        use slicer_model::{Literal, PredClause, PredOp, Predicate};
        let s = schema();
        let disk = DiskParams::paper_testbed();
        let t = fixture(CompressionPolicy::Dictionary, Partitioning::column(&s));
        let referenced = s.attr_set(&["CustKey", "OrderDate"]).unwrap();
        let date = s.attr_id("OrderDate").unwrap();
        let plain = scan_naive(&t, referenced, &disk);

        // A keep-everything predicate checksums identically to the pure
        // projection (qualifying rank == visible rank).
        let all =
            Query::new("all", referenced).with_predicate(Predicate::new(vec![PredClause::new(
                date,
                PredOp::Ge,
                Literal::date(0),
            )]));
        let r = scan_naive_query(&t, &all, &disk);
        assert_eq!(r.checksum, plain.checksum);
        assert_eq!(r.bytes_read, plain.bytes_read);

        // A selective range predicate filters rows; the clustered date
        // column makes most chunks provably empty of matches.
        let narrow =
            Query::new("narrow", referenced).with_predicate(Predicate::new(vec![PredClause::new(
                date,
                PredOp::Le,
                Literal::date(40),
            )]));
        let f = scan_naive_query(&t, &narrow, &disk);
        assert_ne!(f.checksum, plain.checksum);
        // The fixture is a single chunk, so only an impossible range can
        // prove pruning here; chunk-level selectivity is covered at scale
        // by the executor tests and prune_bench.
        let none = Predicate::new(vec![PredClause::new(date, PredOp::Le, Literal::date(-1))]);
        assert_eq!(t.prune_fraction(&none), 0.0);
        assert_eq!(
            t.prune_fraction(&narrow.predicate.clone().unwrap()),
            1.0,
            "one chunk spanning all dates cannot prune"
        );
        // No-predicate query delegates to the plain scan bit-for-bit.
        let bare = Query::new("bare", referenced);
        assert_eq!(scan_naive_query(&t, &bare, &disk).checksum, plain.checksum);
    }

    #[test]
    fn untouched_partitions_are_not_read() {
        let s = schema();
        let disk = DiskParams::paper_testbed();
        let col = fixture(CompressionPolicy::None, Partitioning::column(&s));
        let r = scan(&col, s.attr_set(&["OrderDate"]).unwrap(), &disk);
        let date_file: u64 = col.snapshot().files[3].stored_bytes();
        assert_eq!(r.bytes_read, date_file);
    }
}
