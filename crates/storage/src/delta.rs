//! The row-store delta: validated ingest batches layered over the
//! columnar base snapshot until a repartition folds them in.
//!
//! Writes do not touch the compressed partition files. An
//! [`IngestBatch`] (appended rows and/or deleted row ids) is validated
//! against the schema, normalized (text trimmed to its stored image so
//! fingerprints survive the eventual encode/decode round-trip), logged as
//! one WAL record, and layered onto the snapshot as a [`DeltaState`]:
//! immutable append batches plus a sorted tombstone set, `Arc`-shared so
//! publishing a new delta generation is a pointer-swap away. Scans merge
//! the delta over the base columns; [`fold_data`] materializes the merge
//! when a repartition compacts the delta into fresh partition files.
//!
//! **Row ids are positional per fold generation**: the rows visible after
//! a fold renumber densely from zero (base rows in order, then surviving
//! delta rows in append order). Deletes always address the *current*
//! generation's ids.

use crate::backend::StorageError;
use crate::data::{ColumnData, TableData};
use slicer_model::{AttrKind, TableSchema};
use std::sync::Arc;

/// One atomic unit of ingest: rows to append and/or row ids to delete.
/// Applied all-or-nothing — it is logged as a single WAL record.
#[derive(Debug, Clone, Default)]
pub struct IngestBatch {
    /// Rows to append, one column per schema attribute (may be `None`
    /// for a delete-only batch).
    pub appends: Option<TableData>,
    /// Row ids (positional, current generation) to delete.
    pub deletes: Vec<u64>,
}

impl IngestBatch {
    /// An append-only batch.
    pub fn append(rows: TableData) -> IngestBatch {
        IngestBatch {
            appends: Some(rows),
            deletes: Vec::new(),
        }
    }

    /// A delete-only batch.
    pub fn delete(row_ids: Vec<u64>) -> IngestBatch {
        IngestBatch {
            appends: None,
            deletes: row_ids,
        }
    }

    /// Rows this batch appends.
    pub fn appended_rows(&self) -> usize {
        self.appends.as_ref().map_or(0, |d| d.rows)
    }

    /// True iff the batch changes nothing.
    pub fn is_empty(&self) -> bool {
        self.appended_rows() == 0 && self.deletes.is_empty()
    }
}

/// One immutable appended run: `data.rows` rows whose ids are
/// `first_row_id..first_row_id + rows`.
#[derive(Debug)]
pub struct DeltaBatch {
    /// Row id of the batch's first row.
    pub first_row_id: u64,
    /// The appended rows, one column per schema attribute.
    pub data: TableData,
}

/// The delta pinned with a [`crate::engine::TableSnapshot`]: append
/// batches plus tombstones, both immutable and `Arc`-shared across
/// generations.
#[derive(Debug, Clone, Default)]
pub struct DeltaState {
    batches: Vec<Arc<DeltaBatch>>,
    /// Deleted row ids, sorted ascending, unique. May address base rows
    /// (< base row count) or delta rows.
    deleted: Arc<Vec<u64>>,
    rows: usize,
    stored_bytes: u64,
}

impl DeltaState {
    /// True iff there is nothing to merge: no appended rows, no
    /// tombstones.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 && self.deleted.is_empty()
    }

    /// Total appended rows (including any that were later deleted).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of tombstones.
    pub fn deletes(&self) -> usize {
        self.deleted.len()
    }

    /// The sorted tombstone set.
    pub fn deleted_ids(&self) -> &[u64] {
        &self.deleted
    }

    /// The append batches, oldest first.
    pub fn batches(&self) -> &[Arc<DeltaBatch>] {
        &self.batches
    }

    /// Raw bytes a scan must read to merge this delta: the row-store
    /// byte image of every appended value plus 8 bytes per tombstone.
    /// Deterministic (data-derived, no padding), so the naive and
    /// vectorized scan paths account identically.
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// True iff `row_id` is tombstoned.
    pub fn is_deleted(&self, row_id: u64) -> bool {
        self.deleted.binary_search(&row_id).is_ok()
    }

    /// Layer one validated batch on top: a new `DeltaState` sharing every
    /// existing batch by pointer. `next_row_id` is the id the first
    /// appended row receives (base rows + delta rows so far).
    pub(crate) fn with_batch(&self, batch: &IngestBatch, next_row_id: u64) -> DeltaState {
        let mut batches = self.batches.clone();
        let mut rows = self.rows;
        let mut stored = self.stored_bytes;
        if let Some(data) = &batch.appends {
            if data.rows > 0 {
                rows += data.rows;
                stored += raw_row_bytes(data);
                batches.push(Arc::new(DeltaBatch {
                    first_row_id: next_row_id,
                    data: data.clone(),
                }));
            }
        }
        let deleted = if batch.deletes.is_empty() {
            Arc::clone(&self.deleted)
        } else {
            let mut d: Vec<u64> = (*self.deleted).clone();
            d.extend_from_slice(&batch.deletes);
            d.sort_unstable();
            stored += 8 * batch.deletes.len() as u64;
            Arc::new(d)
        };
        DeltaState {
            batches,
            deleted,
            rows,
            stored_bytes: stored,
        }
    }
}

/// The exact raw byte image of a row-store batch (4 B ints/dates, 8 B
/// decimals, unpadded UTF-8 text).
fn raw_row_bytes(data: &TableData) -> u64 {
    data.columns
        .iter()
        .map(|c| match c {
            ColumnData::Int(v) => 4 * v.len() as u64,
            ColumnData::Date(v) => 4 * v.len() as u64,
            ColumnData::Decimal(v) => 8 * v.len() as u64,
            ColumnData::Text(v) => v.iter().map(|s| s.len() as u64).sum(),
        })
        .sum()
}

/// Validate `batch` against `schema` and the currently visible rows, and
/// normalize it to its stored image: text is right-trimmed (the padded
/// fixed-width encoding cannot represent trailing spaces) and width-checked,
/// column kinds and lengths must match the schema, deletes must address
/// live rows exactly once. Returns the normalized batch ready for the WAL.
pub(crate) fn validate_batch(
    schema: &TableSchema,
    batch: &IngestBatch,
    total_rows: u64,
    delta: &DeltaState,
) -> Result<IngestBatch, StorageError> {
    let appends = match &batch.appends {
        None => None,
        Some(data) => {
            if data.columns.len() != schema.attr_count() {
                return Err(StorageError::InvalidBatch(format!(
                    "batch has {} columns, schema {} needs {}",
                    data.columns.len(),
                    schema.name(),
                    schema.attr_count()
                )));
            }
            let mut columns = Vec::with_capacity(data.columns.len());
            for (idx, (col, attr)) in data.columns.iter().zip(schema.attributes()).enumerate() {
                if col.len() != data.rows {
                    return Err(StorageError::InvalidBatch(format!(
                        "column {idx} has {} rows, batch claims {}",
                        col.len(),
                        data.rows
                    )));
                }
                let normalized = match (col, attr.kind) {
                    (ColumnData::Int(_), AttrKind::Int)
                    | (ColumnData::Decimal(_), AttrKind::Decimal)
                    | (ColumnData::Date(_), AttrKind::Date) => col.clone(),
                    (ColumnData::Text(v), AttrKind::Text) => {
                        let width = attr.size as usize;
                        let mut out = Vec::with_capacity(v.len());
                        for s in v {
                            let trimmed = s.trim_end();
                            if trimmed.len() > width {
                                return Err(StorageError::InvalidBatch(format!(
                                    "text value of {} bytes exceeds {}'s width {width}",
                                    trimmed.len(),
                                    attr.name
                                )));
                            }
                            out.push(trimmed.to_string());
                        }
                        ColumnData::Text(out)
                    }
                    _ => {
                        return Err(StorageError::InvalidBatch(format!(
                            "column {idx} kind does not match attribute {} ({:?})",
                            attr.name, attr.kind
                        )));
                    }
                };
                columns.push(normalized);
            }
            Some(TableData {
                columns,
                rows: data.rows,
            })
        }
    };
    let mut deletes = batch.deletes.clone();
    deletes.sort_unstable();
    for pair in deletes.windows(2) {
        if pair[0] == pair[1] {
            return Err(StorageError::InvalidBatch(format!(
                "row {} deleted twice in one batch",
                pair[0]
            )));
        }
    }
    for &rid in &deletes {
        if rid >= total_rows {
            return Err(StorageError::InvalidBatch(format!(
                "delete of row {rid} past the last row id {total_rows}"
            )));
        }
        if delta.is_deleted(rid) {
            return Err(StorageError::InvalidBatch(format!(
                "row {rid} is already deleted"
            )));
        }
    }
    Ok(IngestBatch { appends, deletes })
}

/// Materialize the merge: base rows (minus tombstones) followed by delta
/// rows (minus tombstones), renumbered densely — the data a delta-folding
/// repartition encodes into fresh partition files.
pub(crate) fn fold_data(base: &TableData, delta: &DeltaState) -> TableData {
    let keep_base: Vec<usize> = (0..base.rows)
        .filter(|&r| !delta.is_deleted(r as u64))
        .collect();
    let kept_batches: Vec<(&Arc<DeltaBatch>, Vec<usize>)> = delta
        .batches()
        .iter()
        .map(|b| {
            let keep: Vec<usize> = (0..b.data.rows)
                .filter(|&i| !delta.is_deleted(b.first_row_id + i as u64))
                .collect();
            (b, keep)
        })
        .collect();
    let rows = keep_base.len() + kept_batches.iter().map(|(_, k)| k.len()).sum::<usize>();
    let columns = base
        .columns
        .iter()
        .enumerate()
        .map(|(ci, col)| {
            fn gather<T: Clone>(out: &mut Vec<T>, src: &[T], keep: &[usize]) {
                out.extend(keep.iter().map(|&i| src[i].clone()));
            }
            match col {
                ColumnData::Int(v) => {
                    let mut out = Vec::with_capacity(rows);
                    gather(&mut out, v, &keep_base);
                    for (b, keep) in &kept_batches {
                        let ColumnData::Int(bv) = &b.data.columns[ci] else {
                            unreachable!("validated batch kind");
                        };
                        gather(&mut out, bv, keep);
                    }
                    ColumnData::Int(out)
                }
                ColumnData::Date(v) => {
                    let mut out = Vec::with_capacity(rows);
                    gather(&mut out, v, &keep_base);
                    for (b, keep) in &kept_batches {
                        let ColumnData::Date(bv) = &b.data.columns[ci] else {
                            unreachable!("validated batch kind");
                        };
                        gather(&mut out, bv, keep);
                    }
                    ColumnData::Date(out)
                }
                ColumnData::Decimal(v) => {
                    let mut out = Vec::with_capacity(rows);
                    gather(&mut out, v, &keep_base);
                    for (b, keep) in &kept_batches {
                        let ColumnData::Decimal(bv) = &b.data.columns[ci] else {
                            unreachable!("validated batch kind");
                        };
                        gather(&mut out, bv, keep);
                    }
                    ColumnData::Decimal(out)
                }
                ColumnData::Text(v) => {
                    let mut out = Vec::with_capacity(rows);
                    gather(&mut out, v, &keep_base);
                    for (b, keep) in &kept_batches {
                        let ColumnData::Text(bv) = &b.data.columns[ci] else {
                            unreachable!("validated batch kind");
                        };
                        gather(&mut out, bv, keep);
                    }
                    ColumnData::Text(out)
                }
            }
        })
        .collect();
    TableData { columns, rows }
}

// --- binary (de)serialization of row batches (WAL payloads) -----------

const COL_INT: u8 = 0;
const COL_DECIMAL: u8 = 1;
const COL_DATE: u8 = 2;
const COL_TEXT: u8 = 3;

/// Append the self-describing binary image of `data` to `out`.
pub(crate) fn encode_table_data(data: &TableData, out: &mut Vec<u8>) {
    out.extend_from_slice(&(data.rows as u64).to_le_bytes());
    out.extend_from_slice(&(data.columns.len() as u32).to_le_bytes());
    for col in &data.columns {
        match col {
            ColumnData::Int(v) => {
                out.push(COL_INT);
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::Decimal(v) => {
                out.push(COL_DECIMAL);
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::Date(v) => {
                out.push(COL_DATE);
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::Text(v) => {
                out.push(COL_TEXT);
                for s in v {
                    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
            }
        }
    }
}

/// Consume one encoded [`TableData`] from the front of `buf`.
pub(crate) fn decode_table_data(buf: &mut &[u8]) -> Result<TableData, StorageError> {
    let rows = take_u64(buf)? as usize;
    let cols = take_u32(buf)? as usize;
    if cols > u16::MAX as usize {
        return Err(StorageError::Corrupt(format!(
            "implausible column count {cols}"
        )));
    }
    let mut columns = Vec::with_capacity(cols);
    for _ in 0..cols {
        let tag = take_bytes(buf, 1)?[0];
        let col = match tag {
            COL_INT | COL_DATE => {
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(i32::from_le_bytes(take_bytes(buf, 4)?.try_into().unwrap()));
                }
                if tag == COL_INT {
                    ColumnData::Int(v)
                } else {
                    ColumnData::Date(v)
                }
            }
            COL_DECIMAL => {
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(i64::from_le_bytes(take_bytes(buf, 8)?.try_into().unwrap()));
                }
                ColumnData::Decimal(v)
            }
            COL_TEXT => {
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    let len = take_u32(buf)? as usize;
                    let bytes = take_bytes(buf, len)?;
                    let s = std::str::from_utf8(bytes)
                        .map_err(|_| StorageError::Corrupt("non-UTF-8 text value".into()))?;
                    v.push(s.to_string());
                }
                ColumnData::Text(v)
            }
            other => {
                return Err(StorageError::Corrupt(format!("unknown column tag {other}")));
            }
        };
        columns.push(col);
    }
    Ok(TableData { columns, rows })
}

/// Self-describing binary image of one [`IngestBatch`] — the payload a
/// network tier carries inside a wire frame so a remote client's batch
/// lands byte-identical in the server's WAL. Same shape as the WAL's
/// `Ingest` record payload (appends flag + row image + delete list), but
/// unframed: the transport provides its own length and checksum.
pub fn encode_ingest_batch(batch: &IngestBatch) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match &batch.appends {
        Some(data) => {
            out.push(1);
            encode_table_data(data, &mut out);
        }
        None => out.push(0),
    }
    out.extend_from_slice(&(batch.deletes.len() as u64).to_le_bytes());
    for rid in &batch.deletes {
        out.extend_from_slice(&rid.to_le_bytes());
    }
    out
}

/// Decode one [`encode_ingest_batch`] image. Structural validation only
/// (the schema-aware checks run in [`crate::StoredTable::ingest`]);
/// rejects trailing bytes, implausible counts, and truncation with a
/// typed [`StorageError::Corrupt`] — never panics on arbitrary input.
pub fn decode_ingest_batch(bytes: &[u8]) -> Result<IngestBatch, StorageError> {
    let mut buf = bytes;
    let appends = match take_bytes(&mut buf, 1)?[0] {
        0 => None,
        1 => Some(decode_table_data(&mut buf)?),
        other => {
            return Err(StorageError::Corrupt(format!("bad appends flag {other}")));
        }
    };
    let n = take_u64(&mut buf)? as usize;
    if n > buf.len() / 8 {
        return Err(StorageError::Corrupt(format!(
            "implausible delete count {n}"
        )));
    }
    let mut deletes = Vec::with_capacity(n);
    for _ in 0..n {
        deletes.push(take_u64(&mut buf)?);
    }
    if !buf.is_empty() {
        return Err(StorageError::Corrupt(format!(
            "{} trailing bytes in ingest batch",
            buf.len()
        )));
    }
    Ok(IngestBatch { appends, deletes })
}

pub(crate) fn take_bytes<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], StorageError> {
    if buf.len() < n {
        return Err(StorageError::Corrupt(format!(
            "truncated: wanted {n} bytes, {} left",
            buf.len()
        )));
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

pub(crate) fn take_u32(buf: &mut &[u8]) -> Result<u32, StorageError> {
    Ok(u32::from_le_bytes(take_bytes(buf, 4)?.try_into().unwrap()))
}

pub(crate) fn take_u64(buf: &mut &[u8]) -> Result<u64, StorageError> {
    Ok(u64::from_le_bytes(take_bytes(buf, 8)?.try_into().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicer_model::TableSchema;

    fn schema() -> TableSchema {
        TableSchema::builder("T", 10)
            .attr("K", 4, AttrKind::Int)
            .attr("V", 8, AttrKind::Decimal)
            .attr("S", 6, AttrKind::Text)
            .build()
            .unwrap()
    }

    fn rows(n: usize, salt: i32) -> TableData {
        TableData {
            columns: vec![
                ColumnData::Int((0..n as i32).map(|i| i + salt).collect()),
                ColumnData::Decimal((0..n as i64).map(|i| i * 100).collect()),
                ColumnData::Text((0..n).map(|i| format!("s{i}")).collect()),
            ],
            rows: n,
        }
    }

    #[test]
    fn ingest_batch_roundtrips_and_rejects_garbage() {
        for batch in [
            IngestBatch::append(rows(5, 1)),
            IngestBatch::delete(vec![0, 7, 9]),
            IngestBatch {
                appends: Some(rows(2, 9)),
                deletes: vec![3],
            },
            IngestBatch::default(),
        ] {
            let bytes = encode_ingest_batch(&batch);
            let back = decode_ingest_batch(&bytes).unwrap();
            assert_eq!(back.appends, batch.appends);
            assert_eq!(back.deletes, batch.deletes);
            // Truncation at every byte is a typed error, never a panic.
            for cut in 0..bytes.len() {
                assert!(decode_ingest_batch(&bytes[..cut]).is_err(), "cut at {cut}");
            }
            // Trailing garbage is rejected.
            let mut padded = bytes.clone();
            padded.push(0);
            assert!(decode_ingest_batch(&padded).is_err());
        }
        assert!(decode_ingest_batch(&[2]).is_err(), "bad appends flag");
    }

    #[test]
    fn table_data_roundtrips() {
        let data = rows(7, 3);
        let mut buf = Vec::new();
        encode_table_data(&data, &mut buf);
        let mut slice = buf.as_slice();
        assert_eq!(decode_table_data(&mut slice).unwrap(), data);
        assert!(slice.is_empty());
    }

    #[test]
    fn validation_normalizes_text_and_rejects_bad_batches() {
        let s = schema();
        let delta = DeltaState::default();
        let padded = IngestBatch::append(TableData {
            columns: vec![
                ColumnData::Int(vec![1]),
                ColumnData::Decimal(vec![2]),
                ColumnData::Text(vec!["ab  ".into()]),
            ],
            rows: 1,
        });
        let ok = validate_batch(&s, &padded, 10, &delta).unwrap();
        match &ok.appends.unwrap().columns[2] {
            ColumnData::Text(v) => assert_eq!(v[0], "ab"),
            other => panic!("unexpected {other:?}"),
        }
        let too_wide = IngestBatch::append(TableData {
            columns: vec![
                ColumnData::Int(vec![1]),
                ColumnData::Decimal(vec![2]),
                ColumnData::Text(vec!["sevenchars".into()]),
            ],
            rows: 1,
        });
        assert!(validate_batch(&s, &too_wide, 10, &delta).is_err());
        let wrong_kind = IngestBatch::append(TableData {
            columns: vec![
                ColumnData::Date(vec![1]),
                ColumnData::Decimal(vec![2]),
                ColumnData::Text(vec!["x".into()]),
            ],
            rows: 1,
        });
        assert!(validate_batch(&s, &wrong_kind, 10, &delta).is_err());
        assert!(validate_batch(&s, &IngestBatch::delete(vec![10]), 10, &delta).is_err());
        assert!(validate_batch(&s, &IngestBatch::delete(vec![3, 3]), 10, &delta).is_err());
        let once = delta.with_batch(&IngestBatch::delete(vec![3]), 10);
        assert!(validate_batch(&s, &IngestBatch::delete(vec![3]), 10, &once).is_err());
    }

    #[test]
    fn fold_drops_tombstoned_rows_and_renumbers() {
        let base = rows(4, 0);
        let mut delta = DeltaState::default();
        delta = delta.with_batch(&IngestBatch::append(rows(3, 100)), 4);
        // Delete base row 1 and the middle delta row (id 5).
        delta = delta.with_batch(&IngestBatch::delete(vec![1, 5]), 7);
        assert_eq!(delta.rows(), 3);
        assert_eq!(delta.deletes(), 2);
        let folded = fold_data(&base, &delta);
        assert_eq!(folded.rows, 5);
        match &folded.columns[0] {
            ColumnData::Int(v) => assert_eq!(v, &[0, 2, 3, 100, 102]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn delta_bytes_track_raw_image() {
        let delta = DeltaState::default().with_batch(&IngestBatch::append(rows(2, 0)), 0);
        // 2×(4 + 8) fixed + "s0" + "s1" = 28.
        assert_eq!(delta.stored_bytes(), 28);
        let with_del = delta.with_batch(&IngestBatch::delete(vec![0]), 2);
        assert_eq!(with_del.stored_bytes(), 36);
    }
}
