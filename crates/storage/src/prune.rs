//! Chunk-granular pruning metadata: zone maps and bloom filters.
//!
//! Every column segment of a partition file carries one [`ChunkStats`] per
//! [`CHUNK_ROWS`]-row chunk (the executor's block size, so a skipped chunk
//! is exactly a skipped block): the min/max *zone key* of the chunk's
//! values plus a 256-bit bloom filter of their fingerprints. A scan with a
//! predicate tests each clause against the chunk stats of the segment
//! storing the clause's attribute; a chunk that cannot match is skipped
//! before any decode, and because all partition files of a snapshot share
//! the row order, the per-clause verdicts AND together into one global
//! keep-mask over chunks.
//!
//! # Zone keys
//!
//! Values are mapped to an `i64` key whose order *weakly* agrees with the
//! value order (`a ≤ b ⇒ key(a) ≤ key(b)`):
//!
//! * `Int`/`Date` — the value widened to `i64`;
//! * `Decimal` — the fixed-point `i64` itself;
//! * `Text` — the first 8 bytes of the trimmed string, zero-padded,
//!   read big-endian and shifted into signed order. Truncation collapses
//!   long shared prefixes to *equal* keys, which can only make pruning
//!   keep more chunks — never drop a matching one.
//!
//! Range clauses prune on keys alone: `attr ≤ lit` can only match inside a
//! chunk whose `min_key ≤ key(lit)`; `attr ≥ lit` needs `max_key ≥
//! key(lit)`. Equality additionally probes the bloom filter with the
//! value's exact fingerprint (the same FNV-1a image the scan checksums
//! hash), so low-cardinality columns prune even when the zone straddles
//! the literal. All tests are conservative: a kept chunk may hold no
//! matching row, but a skipped chunk provably cannot hold one.

use crate::data::{fnv1a, ColumnData};
use slicer_model::{AttrKind, Literal, PredClause, PredOp};

/// Rows per pruning chunk. Equal to the executor's scan block size, so the
/// keep-mask granularity and the blocked-scan granularity coincide.
pub const CHUNK_ROWS: usize = 2048;

/// Pruning statistics of one [`CHUNK_ROWS`]-row chunk of one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkStats {
    /// Smallest zone key in the chunk (`i64::MAX` when empty).
    pub min_key: i64,
    /// Largest zone key in the chunk (`i64::MIN` when empty).
    pub max_key: i64,
    /// 256-bit bloom filter over value fingerprints, two probes per value.
    pub bloom: [u64; 4],
}

impl ChunkStats {
    /// Stats of an empty chunk: an impossible zone, an empty filter.
    pub fn empty() -> ChunkStats {
        ChunkStats {
            min_key: i64::MAX,
            max_key: i64::MIN,
            bloom: [0; 4],
        }
    }

    /// Fold one value (its zone key and fingerprint) into the stats.
    #[inline]
    pub fn add(&mut self, key: i64, fp: u64) {
        self.min_key = self.min_key.min(key);
        self.max_key = self.max_key.max(key);
        for bit in bloom_bits(fp) {
            self.bloom[bit >> 6] |= 1u64 << (bit & 63);
        }
    }

    /// True unless the filter proves no value with fingerprint `fp` was
    /// added. False positives possible, false negatives not.
    #[inline]
    pub fn bloom_may_contain(&self, fp: u64) -> bool {
        bloom_bits(fp)
            .iter()
            .all(|&bit| self.bloom[bit >> 6] & (1u64 << (bit & 63)) != 0)
    }

    /// Conservative clause test: can any row of this chunk satisfy
    /// `attr op value`, where `key`/`fp` describe the literal? A `false`
    /// verdict is a proof; `true` merely fails to prove otherwise.
    #[inline]
    pub fn may_match(&self, op: PredOp, key: i64, fp: u64) -> bool {
        match op {
            PredOp::Eq => self.min_key <= key && key <= self.max_key && self.bloom_may_contain(fp),
            PredOp::Le => self.min_key <= key,
            PredOp::Ge => self.max_key >= key,
        }
    }
}

/// The two bloom bit positions (0..256) probed for a fingerprint: the low
/// byte and the low byte of the high half — independent enough for a
/// 256-bit filter, and trivially recomputable anywhere.
#[inline]
fn bloom_bits(fp: u64) -> [usize; 2] {
    [(fp & 255) as usize, ((fp >> 32) & 255) as usize]
}

/// Pruning metadata of one column segment: [`ChunkStats`] per chunk, in
/// row order. Built at encode time, persisted in the partition-file image,
/// carried verbatim when an incremental repartition reuses the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnPrune {
    /// Per-chunk stats, `ceil(rows / CHUNK_ROWS)` entries.
    pub chunks: Vec<ChunkStats>,
}

impl ColumnPrune {
    /// Build stats for `col`, chunked on the storage row order.
    pub fn build(col: &ColumnData) -> ColumnPrune {
        let rows = col.len();
        let mut chunks = Vec::with_capacity(rows.div_ceil(CHUNK_ROWS));
        for base in (0..rows).step_by(CHUNK_ROWS) {
            let mut s = ChunkStats::empty();
            for i in base..(base + CHUNK_ROWS).min(rows) {
                s.add(value_key(col, i), value_fingerprint(col, i));
            }
            chunks.push(s);
        }
        ColumnPrune { chunks }
    }
}

/// Zone key of a text value: first 8 trimmed bytes, zero-padded,
/// big-endian, mapped into signed order.
#[inline]
fn text_key(trimmed: &[u8]) -> i64 {
    let mut raw = [0u8; 8];
    let n = trimmed.len().min(8);
    raw[..n].copy_from_slice(&trimmed[..n]);
    (u64::from_be_bytes(raw) ^ (1u64 << 63)) as i64
}

/// Zone key of row `i` of `col`.
#[inline]
pub fn value_key(col: &ColumnData, i: usize) -> i64 {
    match col {
        ColumnData::Int(v) => v[i] as i64,
        ColumnData::Date(v) => v[i] as i64,
        ColumnData::Decimal(v) => v[i],
        ColumnData::Text(v) => text_key(v[i].trim_end().as_bytes()),
    }
}

/// Fingerprint of row `i` of `col` in its *stored* (trailing-whitespace
/// trimmed) form — the image a decoded scan hashes, which is what bloom
/// probes must agree with even when the in-memory source text still
/// carries padding.
#[inline]
pub fn value_fingerprint(col: &ColumnData, i: usize) -> u64 {
    match col {
        ColumnData::Text(v) => fnv1a(v[i].trim_end().as_bytes()),
        other => other.fingerprint(i),
    }
}

/// Zone key of a literal, on the same scale as [`value_key`].
#[inline]
pub fn literal_key(lit: &Literal) -> i64 {
    match lit.kind {
        AttrKind::Int | AttrKind::Date | AttrKind::Decimal => lit.num,
        AttrKind::Text => text_key(lit.text.trim_end().as_bytes()),
    }
}

/// Fingerprint of a literal, on the same scale as [`value_fingerprint`].
#[inline]
pub fn literal_fingerprint(lit: &Literal) -> u64 {
    match lit.kind {
        AttrKind::Int | AttrKind::Date => fnv1a(&(lit.num as i32).to_le_bytes()),
        AttrKind::Decimal => fnv1a(&lit.num.to_le_bytes()),
        AttrKind::Text => fnv1a(lit.text.trim_end().as_bytes()),
    }
}

/// Exact residual evaluation of one clause against row `i` of the
/// clause's column — the ground truth the chunk tests conservatively
/// approximate. Text compares trimmed forms (the stored canonical form).
#[inline]
pub fn clause_matches(clause: &PredClause, col: &ColumnData, i: usize) -> bool {
    #[inline]
    fn cmp<T: Ord>(op: PredOp, v: T, lit: T) -> bool {
        match op {
            PredOp::Eq => v == lit,
            PredOp::Le => v <= lit,
            PredOp::Ge => v >= lit,
        }
    }
    match col {
        ColumnData::Int(v) => cmp(clause.op, v[i] as i64, clause.value.num),
        ColumnData::Date(v) => cmp(clause.op, v[i] as i64, clause.value.num),
        ColumnData::Decimal(v) => cmp(clause.op, v[i], clause.value.num),
        ColumnData::Text(v) => cmp(clause.op, v[i].trim_end(), clause.value.text.trim_end()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use slicer_model::AttrId;

    fn clause(op: PredOp, value: Literal) -> PredClause {
        PredClause::new(AttrId(0), op, value)
    }

    /// The load-bearing invariant: for every column shape, operator and
    /// literal, a chunk whose stats reject the clause holds no matching
    /// row.
    #[test]
    fn chunk_rejection_is_a_proof() {
        let mut rng = StdRng::seed_from_u64(42);
        let rows = CHUNK_ROWS * 2 + 137;
        let cols = vec![
            ColumnData::Int((0..rows).map(|_| rng.gen_range(-50i32..50)).collect()),
            ColumnData::Date((0..rows).map(|_| rng.gen_range(0i32..2526)).collect()),
            ColumnData::Decimal((0..rows).map(|_| rng.gen_range(-1000i64..1000)).collect()),
            ColumnData::Text(
                (0..rows)
                    .map(|_| {
                        ["AIR", "RAIL", "SHIP", "TRUCK", "MAIL  "][rng.gen_range(0..5usize)]
                            .to_string()
                    })
                    .collect(),
            ),
        ];
        for col in &cols {
            let prune = ColumnPrune::build(col);
            assert_eq!(prune.chunks.len(), rows.div_ceil(CHUNK_ROWS));
            let literals: Vec<Literal> = match col {
                ColumnData::Int(_) => (-60..60).step_by(7).map(Literal::int).collect(),
                ColumnData::Date(_) => (0..2526).step_by(211).map(Literal::date).collect(),
                ColumnData::Decimal(_) => (-1100..1100).step_by(93).map(Literal::decimal).collect(),
                ColumnData::Text(_) => ["AIR", "MAIL", "FOB", "Z", ""]
                    .iter()
                    .map(|s| Literal::text(*s))
                    .collect(),
            };
            for lit in &literals {
                for op in [PredOp::Eq, PredOp::Le, PredOp::Ge] {
                    let c = clause(op, lit.clone());
                    let (key, fp) = (literal_key(lit), literal_fingerprint(lit));
                    for (ci, stats) in prune.chunks.iter().enumerate() {
                        if stats.may_match(op, key, fp) {
                            continue;
                        }
                        let lo = ci * CHUNK_ROWS;
                        let hi = (lo + CHUNK_ROWS).min(rows);
                        for i in lo..hi {
                            assert!(
                                !clause_matches(&c, col, i),
                                "skipped chunk {ci} holds matching row {i} for {op:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn zone_keys_weakly_preserve_text_order() {
        let words = ["", "A", "AIR", "AIRPLANE", "RAIL", "RAILWAYSTATION", "Z"];
        for a in words {
            for b in words {
                if a <= b {
                    assert!(
                        text_key(a.as_bytes()) <= text_key(b.as_bytes()),
                        "{a:?} vs {b:?}"
                    );
                }
            }
        }
        // Truncation beyond 8 bytes collapses to equality, never inverts.
        assert_eq!(text_key(b"prefixes-one"), text_key(b"prefixes-two"),);
    }

    #[test]
    fn bloom_equality_never_false_negative() {
        let col = ColumnData::Text(vec!["AIR".into(), "RAIL".into(), "MAIL ".into()]);
        let prune = ColumnPrune::build(&col);
        // Stored (trimmed) form must probe positive, padding and all.
        for lit in ["AIR", "RAIL", "MAIL", "MAIL   "] {
            let l = Literal::text(lit);
            assert!(
                prune.chunks[0].may_match(PredOp::Eq, literal_key(&l), literal_fingerprint(&l)),
                "{lit:?}"
            );
        }
    }

    #[test]
    fn equality_zone_and_bloom_prune_disjoint_literals() {
        let col = ColumnData::Int((0..100).collect());
        let prune = ColumnPrune::build(&col);
        let miss = Literal::int(1000);
        assert!(!prune.chunks[0].may_match(
            PredOp::Eq,
            literal_key(&miss),
            literal_fingerprint(&miss)
        ));
        let below = Literal::int(-1);
        assert!(!prune.chunks[0].may_match(
            PredOp::Le,
            literal_key(&below),
            literal_fingerprint(&below)
        ));
        let above = Literal::int(100);
        assert!(!prune.chunks[0].may_match(
            PredOp::Ge,
            literal_key(&above),
            literal_fingerprint(&above)
        ));
    }

    #[test]
    fn empty_chunk_matches_nothing() {
        let s = ChunkStats::empty();
        let l = Literal::int(0);
        for op in [PredOp::Eq, PredOp::Le, PredOp::Ge] {
            assert!(!s.may_match(op, literal_key(&l), literal_fingerprint(&l)));
        }
    }

    #[test]
    fn residual_matches_semantics() {
        let ints = ColumnData::Int(vec![5, 10]);
        let c = clause(PredOp::Le, Literal::int(5));
        assert!(clause_matches(&c, &ints, 0));
        assert!(!clause_matches(&c, &ints, 1));
        let text = ColumnData::Text(vec!["AIR  ".into()]);
        let c = clause(PredOp::Eq, Literal::text("AIR"));
        assert!(clause_matches(&c, &text, 0));
    }
}
