//! Prepared segment cursors: the bridge between encoded column segments
//! and the executor's blocked tuple reconstruction.
//!
//! A [`PreparedSegment`] is a segment in fingerprint-ready form. Preparing
//! one costs exactly the decode work its codec demands — and nothing more:
//!
//! * **Plain** — zero-copy: the cursor keeps the stored [`Bytes`] (an
//!   `Arc` clone) and fingerprints each cell straight out of the raw
//!   little-endian image; no decode at all.
//! * **Dictionary** — the code stream is kept zero-copy and the dictionary
//!   is fingerprinted *once per entry* into a lookup table, so per-row work
//!   is one table index instead of decode + hash of the value bytes.
//! * **Delta / LZ** (variable-width) — the segment is streamed through
//!   [`DeltaCursor`] / [`lz_decompress_into`] into executor-owned scratch
//!   and reduced to one `u64` fingerprint per row; no `ColumnData`, no
//!   per-row `String`.
//!
//! Every fingerprint reproduces [`ColumnData::fingerprint`] bit-for-bit
//! (that is property-tested against the naive scan in
//! `tests/scan_executor.rs`), so the executor's checksums are identical to
//! the oracle path's.

use crate::compress::{
    delta_for_each, delta_walk, dict_code, lz_decompress_exact, lz_walk, Codec, DictLayout,
    EncodedColumn,
};
use crate::data::{fnv1a_n, text_fingerprint};
use bytes::Bytes;
use slicer_model::AttrKind;

/// How a fixed-width cell image maps to a fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellKind {
    /// 4-byte little-endian integer (ints and dates).
    I32,
    /// 8-byte little-endian integer (decimals).
    I64,
    /// Space-padded text of the segment's fixed width.
    Text,
}

impl CellKind {
    /// The cell kind for a schema attribute kind.
    pub fn of(kind: AttrKind) -> CellKind {
        match kind {
            AttrKind::Int | AttrKind::Date => CellKind::I32,
            AttrKind::Decimal => CellKind::I64,
            AttrKind::Text => CellKind::Text,
        }
    }
}

/// Append the fingerprint of every cell in `raw` to `out`, unrolling the
/// FNV loop for the const-width numeric kinds. Numeric cells are always
/// 4/8 bytes (exactly how the naive decoder consumes the raw image);
/// `width` is the text cell width.
fn fill_cell_fps(raw: &[u8], width: usize, cell: CellKind, out: &mut Vec<u64>) {
    match cell {
        CellKind::Text => out.extend(raw.chunks_exact(width).map(text_fingerprint)),
        CellKind::I32 => out.extend(
            raw.chunks_exact(4)
                .map(|c| fnv1a_n::<4>(c.try_into().expect("4-byte cell"))),
        ),
        CellKind::I64 => out.extend(
            raw.chunks_exact(8)
                .map(|c| fnv1a_n::<8>(c.try_into().expect("8-byte cell"))),
        ),
    }
}

/// A segment readied for blocked fingerprinting. See the module docs for
/// the per-codec representations.
#[derive(Debug)]
pub enum PreparedSegment {
    /// Zero-copy view over a plain fixed-width segment.
    Fixed {
        /// The stored bytes (shared, not copied).
        bytes: Bytes,
        /// Fixed bytes per row.
        width: usize,
        /// How to hash a cell.
        kind: CellKind,
    },
    /// Zero-copy code stream plus a one-time dictionary fingerprint table.
    Dict {
        /// The stored code stream (shared, not copied).
        codes: Bytes,
        /// Bytes per code.
        code_width: usize,
        /// Fingerprint of each dictionary entry, indexed by code.
        fps: Vec<u64>,
    },
    /// Variable-width segment reduced to per-row fingerprints at decode
    /// time (delta / LZ).
    Fps(
        /// One fingerprint per row.
        Vec<u64>,
    ),
}

impl PreparedSegment {
    /// Prepare `enc` for fingerprinting. `kind` is the attribute's schema
    /// kind; `fp_buf` and `lz_scratch` are caller-owned arenas (capacity
    /// is reused, contents overwritten).
    pub fn prepare(
        enc: &EncodedColumn,
        kind: AttrKind,
        mut fp_buf: Vec<u64>,
        lz_scratch: &mut Vec<u8>,
    ) -> PreparedSegment {
        let cell = CellKind::of(kind);
        match enc.codec {
            Codec::Plain => PreparedSegment::Fixed {
                bytes: enc.bytes.clone(),
                width: fixed_width_of(enc, cell),
                kind: cell,
            },
            Codec::Dictionary => {
                let layout = DictLayout::of(enc);
                fp_buf.clear();
                fill_cell_fps(
                    &enc.dict_bytes[..layout.entries * layout.value_width],
                    layout.value_width,
                    cell,
                    &mut fp_buf,
                );
                PreparedSegment::Dict {
                    codes: enc.bytes.clone(),
                    code_width: layout.code_width,
                    fps: fp_buf,
                }
            }
            Codec::Delta => {
                fp_buf.clear();
                fp_buf.reserve(enc.rows);
                match cell {
                    // Naive decode narrows to i32 before fingerprinting;
                    // reproduce that exactly.
                    CellKind::I32 => delta_for_each(enc, |v| {
                        fp_buf.push(fnv1a_n((v as i32).to_le_bytes()));
                    }),
                    _ => delta_for_each(enc, |v| {
                        fp_buf.push(fnv1a_n(v.to_le_bytes()));
                    }),
                }
                PreparedSegment::Fps(fp_buf)
            }
            Codec::Lz => {
                lz_decompress_exact(&enc.bytes, enc.rows * enc.raw_width, lz_scratch);
                let w = lz_scratch.len().checked_div(enc.rows).unwrap_or(1).max(1);
                fp_buf.clear();
                fill_cell_fps(&lz_scratch[..enc.rows * w], w, cell, &mut fp_buf);
                PreparedSegment::Fps(fp_buf)
            }
        }
    }

    /// Walk a segment's row-addressing work without materializing values:
    /// the variable-width whole-partition-decode penalty, measured as a
    /// stream over the encoded bytes (every byte of the segment is still
    /// visited to locate row boundaries — what reading *any* attribute of
    /// a variable-width partition forces — but nothing is expanded).
    /// Fixed-width codecs are individually addressable and cost nothing
    /// to skip.
    pub fn walk(enc: &EncodedColumn) {
        match enc.codec {
            Codec::Plain | Codec::Dictionary => {}
            Codec::Delta => {
                std::hint::black_box(delta_walk(&enc.bytes));
            }
            Codec::Lz => {
                std::hint::black_box(lz_walk(&enc.bytes));
            }
        }
    }

    /// Fill `out[j]` with the fingerprint of row `start + j` for each `j`.
    #[inline]
    pub fn fill_fps(&self, start: usize, out: &mut [u64]) {
        match self {
            PreparedSegment::Fixed { bytes, width, kind } => {
                let w = *width;
                let block = &bytes[start * w..(start + out.len()) * w];
                match kind {
                    CellKind::Text => {
                        for (o, cell) in out.iter_mut().zip(block.chunks_exact(w)) {
                            *o = text_fingerprint(cell);
                        }
                    }
                    CellKind::I32 => {
                        for (o, cell) in out.iter_mut().zip(block.chunks_exact(4)) {
                            *o = fnv1a_n::<4>(cell.try_into().expect("4-byte cell"));
                        }
                    }
                    CellKind::I64 => {
                        for (o, cell) in out.iter_mut().zip(block.chunks_exact(8)) {
                            *o = fnv1a_n::<8>(cell.try_into().expect("8-byte cell"));
                        }
                    }
                }
            }
            PreparedSegment::Dict {
                codes,
                code_width,
                fps,
            } => {
                for (j, o) in out.iter_mut().enumerate() {
                    *o = fps[dict_code(codes, *code_width, start + j)];
                }
            }
            PreparedSegment::Fps(fps) => {
                out.copy_from_slice(&fps[start..start + out.len()]);
            }
        }
    }

    /// Reclaim the owned fingerprint buffer (for arena reuse); zero-copy
    /// variants have none.
    pub fn into_fp_buf(self) -> Option<Vec<u64>> {
        match self {
            PreparedSegment::Fixed { .. } => None,
            PreparedSegment::Dict { fps, .. } | PreparedSegment::Fps(fps) => Some(fps),
        }
    }
}

/// The fixed byte width of a plain segment, recovered exactly as the naive
/// decoder recovers it.
fn fixed_width_of(enc: &EncodedColumn, cell: CellKind) -> usize {
    match cell {
        CellKind::I32 => 4,
        CellKind::I64 => 8,
        CellKind::Text => enc.bytes.len().checked_div(enc.rows).unwrap_or(1).max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::encode;
    use crate::data::ColumnData;

    fn fps_of(seg: &PreparedSegment, rows: usize) -> Vec<u64> {
        let mut out = vec![0u64; rows];
        // Two chunks to exercise non-zero `start`.
        let mid = rows / 2;
        let (lo, hi) = out.split_at_mut(mid);
        seg.fill_fps(0, lo);
        seg.fill_fps(mid, hi);
        out
    }

    fn assert_matches_column(col: &ColumnData, codec: Codec, kind: AttrKind) {
        let enc = encode(col, codec);
        let mut lz = Vec::new();
        let seg = PreparedSegment::prepare(&enc, kind, Vec::new(), &mut lz);
        let expect: Vec<u64> = (0..col.len()).map(|i| col.fingerprint(i)).collect();
        assert_eq!(fps_of(&seg, col.len()), expect, "{codec:?} {kind:?}");
    }

    #[test]
    fn every_codec_reproduces_column_fingerprints() {
        let ints = ColumnData::Int(vec![7, -2, 900_000, 7, 0]);
        let decs = ColumnData::Decimal(vec![12345, -9, i64::MAX / 7, 12345]);
        let dates = ColumnData::Date(vec![0, 2526, 100, 100]);
        let text = ColumnData::Text(vec![
            "AIR".into(),
            "DELIVER IN PERSON".into(),
            "AIR".into(),
            "x".into(),
        ]);
        for codec in [Codec::Plain, Codec::Dictionary, Codec::Delta, Codec::Lz] {
            assert_matches_column(&ints, codec, AttrKind::Int);
            assert_matches_column(&dates, codec, AttrKind::Date);
        }
        for codec in [Codec::Plain, Codec::Dictionary, Codec::Lz] {
            assert_matches_column(&text, codec, AttrKind::Text);
        }
        for codec in [Codec::Plain, Codec::Dictionary, Codec::Delta, Codec::Lz] {
            assert_matches_column(&decs, codec, AttrKind::Decimal);
        }
    }

    #[test]
    fn plain_and_dict_are_zero_copy() {
        let col = ColumnData::Int(vec![1, 2, 3]);
        let enc = encode(&col, Codec::Plain);
        let mut lz = Vec::new();
        let seg = PreparedSegment::prepare(&enc, AttrKind::Int, Vec::new(), &mut lz);
        match seg {
            PreparedSegment::Fixed { bytes, .. } => {
                assert_eq!(bytes.as_ptr(), enc.bytes.as_ptr(), "must share storage")
            }
            other => panic!("expected Fixed, got {other:?}"),
        }
    }
}
