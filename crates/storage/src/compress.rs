//! Column compression codecs.
//!
//! DBMS-X (paper Table 7) defaults to LZO for strings/floats and delta
//! encoding for integers/dates, with dictionary encoding as the forced
//! fixed-width alternative. We implement the same three families:
//!
//! * [`Codec::Plain`] — fixed-width raw bytes;
//! * [`Codec::Dictionary`] — fixed-width codes into a per-column dictionary
//!   (the dictionary is charged to the stored size: near-unique columns
//!   gain nothing, matching real systems);
//! * [`Codec::Delta`] — zigzag-varint deltas for integers/dates
//!   (variable-width);
//! * [`Codec::Lz`] — an LZ77-class byte compressor with a 64 KB window and
//!   greedy hash matching, standing in for LZO (variable-width).
//!
//! The property that drives Table 7 is *fixed versus variable width*:
//! fixed-width codecs allow direct per-row offsets into a column-group
//! segment, while variable-width codecs force decoding the whole segment
//! to reconstruct any tuple. [`Codec::fixed_width`] exposes that bit.

use crate::data::ColumnData;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Compression scheme applied to one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Codec {
    /// Raw fixed-width values.
    Plain,
    /// Fixed-width dictionary codes.
    Dictionary,
    /// Zigzag-varint delta encoding (ints/dates only).
    Delta,
    /// LZ77-style byte compression (stand-in for LZO).
    Lz,
}

impl Codec {
    /// True iff rows are individually addressable (fixed byte width per
    /// row) without decoding predecessors.
    pub fn fixed_width(self) -> bool {
        matches!(self, Codec::Plain | Codec::Dictionary)
    }
}

/// One encoded column: bytes plus enough metadata to decode.
#[derive(Debug, Clone)]
pub struct EncodedColumn {
    /// Codec used.
    pub codec: Codec,
    /// Encoded payload.
    pub bytes: Bytes,
    /// Dictionary payload (values in code order), if dictionary-encoded.
    pub dict_bytes: Bytes,
    /// Number of rows.
    pub rows: usize,
}

impl EncodedColumn {
    /// Stored size in bytes (payload + dictionary).
    pub fn stored_bytes(&self) -> u64 {
        (self.bytes.len() + self.dict_bytes.len()) as u64
    }
}

// --- fixed-width raw encoding helpers ---------------------------------

fn raw_bytes(col: &ColumnData) -> (BytesMut, usize) {
    match col {
        ColumnData::Int(v) => {
            let mut b = BytesMut::with_capacity(v.len() * 4);
            for x in v {
                b.put_i32_le(*x);
            }
            (b, 4)
        }
        ColumnData::Date(v) => {
            let mut b = BytesMut::with_capacity(v.len() * 4);
            for x in v {
                b.put_i32_le(*x);
            }
            (b, 4)
        }
        ColumnData::Decimal(v) => {
            let mut b = BytesMut::with_capacity(v.len() * 8);
            for x in v {
                b.put_i64_le(*x);
            }
            (b, 8)
        }
        ColumnData::Text(v) => {
            // Pad to the max observed width so rows stay addressable.
            let w = v.iter().map(|s| s.len()).max().unwrap_or(0).max(1);
            let mut b = BytesMut::with_capacity(v.len() * w);
            for s in v {
                b.put_slice(s.as_bytes());
                b.put_bytes(b' ', w - s.len());
            }
            (b, w)
        }
    }
}

fn decode_raw(bytes: &Bytes, rows: usize, template: &ColumnData) -> ColumnData {
    let mut buf = bytes.clone();
    match template {
        ColumnData::Int(_) => ColumnData::Int((0..rows).map(|_| buf.get_i32_le()).collect()),
        ColumnData::Date(_) => ColumnData::Date((0..rows).map(|_| buf.get_i32_le()).collect()),
        ColumnData::Decimal(_) => {
            ColumnData::Decimal((0..rows).map(|_| buf.get_i64_le()).collect())
        }
        ColumnData::Text(_) => {
            let w = bytes.len().checked_div(rows).unwrap_or(1).max(1);
            ColumnData::Text(
                (0..rows)
                    .map(|i| {
                        let s = &bytes[i * w..(i + 1) * w];
                        String::from_utf8_lossy(s).trim_end().to_string()
                    })
                    .collect(),
            )
        }
    }
}

// --- varint / zigzag ---------------------------------------------------

fn put_varint(b: &mut BytesMut, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            b.put_u8(byte);
            return;
        }
        b.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> u64 {
    let mut x = 0u64;
    let mut shift = 0;
    loop {
        let byte = buf.get_u8();
        x |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return x;
        }
        shift += 7;
    }
}

#[inline]
fn zigzag(x: i64) -> u64 {
    // Shift in u64 space: `x << 1` overflows i64 for large |x|.
    ((x as u64) << 1) ^ ((x >> 63) as u64)
}

#[inline]
fn unzigzag(x: u64) -> i64 {
    ((x >> 1) as i64) ^ -((x & 1) as i64)
}

// --- LZ77-class byte compressor ----------------------------------------

const LZ_MIN_MATCH: usize = 4;
const LZ_WINDOW: usize = 1 << 16;

/// Greedy hash-chain LZ77: tokens are `(literal_len varint, literals,
/// match_len varint, match_dist varint)`; a final token may have
/// `match_len = 0`.
pub fn lz_compress(input: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(input.len() / 2 + 16);
    let mut head: Vec<u32> = vec![u32::MAX; 1 << 15];
    let hash = |w: &[u8]| -> usize {
        let x = u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
        ((x.wrapping_mul(2654435761)) >> 17) as usize & ((1 << 15) - 1)
    };
    let mut i = 0;
    let mut lit_start = 0;
    while i + LZ_MIN_MATCH <= input.len() {
        let h = hash(&input[i..i + 4]);
        let cand = head[h];
        head[h] = i as u32;
        let mut match_len = 0;
        let mut match_pos = 0usize;
        if cand != u32::MAX {
            let c = cand as usize;
            if i - c <= LZ_WINDOW && input[c..c + 4] == input[i..i + 4] {
                let max = input.len() - i;
                let mut l = 4;
                while l < max && input[c + l] == input[i + l] {
                    l += 1;
                }
                match_len = l;
                match_pos = c;
            }
        }
        if match_len >= LZ_MIN_MATCH {
            put_varint(&mut out, (i - lit_start) as u64);
            out.put_slice(&input[lit_start..i]);
            put_varint(&mut out, match_len as u64);
            put_varint(&mut out, (i - match_pos) as u64);
            i += match_len;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    // Trailing literals.
    put_varint(&mut out, (input.len() - lit_start) as u64);
    out.put_slice(&input[lit_start..]);
    put_varint(&mut out, 0); // match_len 0 = end
    put_varint(&mut out, 0);
    out.freeze()
}

/// Inverse of [`lz_compress`].
pub fn lz_decompress(input: &Bytes, expected_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(expected_len);
    let mut buf = input.clone();
    loop {
        let lit = get_varint(&mut buf) as usize;
        for _ in 0..lit {
            out.push(buf.get_u8());
        }
        let mlen = get_varint(&mut buf) as usize;
        let dist = get_varint(&mut buf) as usize;
        if mlen == 0 {
            break;
        }
        let start = out.len() - dist;
        for k in 0..mlen {
            out.push(out[start + k]);
        }
    }
    out
}

// --- public encode / decode --------------------------------------------

/// Encode `col` with `codec`. Delta on text falls back to LZ; delta on
/// decimals uses 64-bit deltas.
pub fn encode(col: &ColumnData, codec: Codec) -> EncodedColumn {
    let rows = col.len();
    match codec {
        Codec::Plain => {
            let (b, _) = raw_bytes(col);
            EncodedColumn {
                codec,
                bytes: b.freeze(),
                dict_bytes: Bytes::new(),
                rows,
            }
        }
        Codec::Dictionary => {
            // Build value dictionary over the raw fixed-width form.
            let (raw, w) = raw_bytes(col);
            let raw = raw.freeze();
            let mut dict: Vec<&[u8]> = Vec::new();
            let mut codes: Vec<u32> = Vec::with_capacity(rows);
            let mut index: std::collections::HashMap<&[u8], u32> = std::collections::HashMap::new();
            for i in 0..rows {
                let v = &raw[i * w..(i + 1) * w];
                let code = *index.entry(v).or_insert_with(|| {
                    dict.push(v);
                    (dict.len() - 1) as u32
                });
                codes.push(code);
            }
            let code_width: usize = match dict.len() {
                0..=0xFF => 1,
                0x100..=0xFFFF => 2,
                _ => 4,
            };
            let mut bytes = BytesMut::with_capacity(rows * code_width);
            for c in &codes {
                match code_width {
                    1 => bytes.put_u8(*c as u8),
                    2 => bytes.put_u16_le(*c as u16),
                    _ => bytes.put_u32_le(*c),
                }
            }
            let mut dict_bytes = BytesMut::with_capacity(dict.len() * w);
            for v in &dict {
                dict_bytes.put_slice(v);
            }
            EncodedColumn {
                codec,
                bytes: bytes.freeze(),
                dict_bytes: dict_bytes.freeze(),
                rows,
            }
        }
        Codec::Delta => match col {
            ColumnData::Int(v) => delta_encode(v.iter().map(|&x| x as i64), rows, codec),
            ColumnData::Date(v) => delta_encode(v.iter().map(|&x| x as i64), rows, codec),
            ColumnData::Decimal(v) => delta_encode(v.iter().copied(), rows, codec),
            ColumnData::Text(_) => encode(col, Codec::Lz),
        },
        Codec::Lz => {
            let (raw, _) = raw_bytes(col);
            EncodedColumn {
                codec,
                bytes: lz_compress(&raw),
                dict_bytes: Bytes::new(),
                rows,
            }
        }
    }
}

fn delta_encode(values: impl Iterator<Item = i64>, rows: usize, codec: Codec) -> EncodedColumn {
    let mut b = BytesMut::new();
    let mut prev = 0i64;
    for x in values {
        // Wrapping difference: lossless over the full i64 range because the
        // decoder adds back with the same wrapping semantics.
        put_varint(&mut b, zigzag(x.wrapping_sub(prev)));
        prev = x;
    }
    EncodedColumn {
        codec,
        bytes: b.freeze(),
        dict_bytes: Bytes::new(),
        rows,
    }
}

/// Decode a column previously produced by [`encode`]. `template` supplies
/// the value type (an empty column of the right variant suffices).
pub fn decode(enc: &EncodedColumn, template: &ColumnData) -> ColumnData {
    match enc.codec {
        Codec::Plain => decode_raw(&enc.bytes, enc.rows, template),
        Codec::Dictionary => {
            let rows = enc.rows;
            // Code width is recoverable from the payload size; dictionary
            // entry width from the dictionary size and the highest code.
            let w = enc.bytes.len().checked_div(rows).unwrap_or(1).max(1);
            let entries = dict_entry_count(&enc.bytes, rows, w);
            let value_w = enc
                .dict_bytes
                .len()
                .checked_div(entries)
                .unwrap_or(1)
                .max(1);
            let mut out_raw = BytesMut::with_capacity(rows * value_w);
            for i in 0..rows {
                let code = match w {
                    1 => enc.bytes[i] as usize,
                    2 => u16::from_le_bytes([enc.bytes[2 * i], enc.bytes[2 * i + 1]]) as usize,
                    _ => u32::from_le_bytes([
                        enc.bytes[4 * i],
                        enc.bytes[4 * i + 1],
                        enc.bytes[4 * i + 2],
                        enc.bytes[4 * i + 3],
                    ]) as usize,
                };
                out_raw.put_slice(&enc.dict_bytes[code * value_w..(code + 1) * value_w]);
            }
            decode_raw(&out_raw.freeze(), rows, template)
        }
        Codec::Delta => {
            let mut buf = enc.bytes.clone();
            let mut prev = 0i64;
            let vals: Vec<i64> = (0..enc.rows)
                .map(|_| {
                    prev = prev.wrapping_add(unzigzag(get_varint(&mut buf)));
                    prev
                })
                .collect();
            match template {
                ColumnData::Int(_) => ColumnData::Int(vals.iter().map(|&x| x as i32).collect()),
                ColumnData::Date(_) => ColumnData::Date(vals.iter().map(|&x| x as i32).collect()),
                ColumnData::Decimal(_) => ColumnData::Decimal(vals),
                ColumnData::Text(_) => unreachable!("delta never encodes text"),
            }
        }
        Codec::Lz => {
            let raw = lz_decompress(&enc.bytes, 0);
            decode_raw(&Bytes::from(raw), enc.rows, template)
        }
    }
}

fn dict_entry_count(codes: &Bytes, rows: usize, code_width: usize) -> usize {
    let mut max = 0usize;
    for i in 0..rows {
        let code = match code_width {
            1 => codes[i] as usize,
            2 => u16::from_le_bytes([codes[2 * i], codes[2 * i + 1]]) as usize,
            _ => u32::from_le_bytes([
                codes[4 * i],
                codes[4 * i + 1],
                codes[4 * i + 2],
                codes[4 * i + 3],
            ]) as usize,
        };
        max = max.max(code + 1);
    }
    max
}

/// DBMS-X's default scheme for a column kind: delta for ints/dates, LZ for
/// strings and decimals (paper Table 7, "Default (LZO or Delta)").
pub fn default_codec(kind: slicer_model::AttrKind) -> Codec {
    match kind {
        slicer_model::AttrKind::Int | slicer_model::AttrKind::Date => Codec::Delta,
        slicer_model::AttrKind::Decimal | slicer_model::AttrKind::Text => Codec::Lz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(col: &ColumnData, codec: Codec) {
        let enc = encode(col, codec);
        let template = match col {
            ColumnData::Int(_) => ColumnData::Int(vec![]),
            ColumnData::Decimal(_) => ColumnData::Decimal(vec![]),
            ColumnData::Date(_) => ColumnData::Date(vec![]),
            ColumnData::Text(_) => ColumnData::Text(vec![]),
        };
        let dec = decode(&enc, &template);
        assert_eq!(col, &dec, "roundtrip failed for {codec:?}");
    }

    #[test]
    fn plain_roundtrips_all_types() {
        roundtrip(&ColumnData::Int(vec![1, -5, 1000, i32::MAX]), Codec::Plain);
        roundtrip(&ColumnData::Decimal(vec![0, -1, 123456789]), Codec::Plain);
        roundtrip(&ColumnData::Date(vec![0, 2526]), Codec::Plain);
        roundtrip(
            &ColumnData::Text(vec!["hello".into(), "a".into(), "world wide".into()]),
            Codec::Plain,
        );
    }

    #[test]
    fn dictionary_roundtrips() {
        roundtrip(&ColumnData::Int(vec![5, 5, 7, 5, 7, 9]), Codec::Dictionary);
        roundtrip(
            &ColumnData::Text(vec!["AIR".into(), "RAIL".into(), "AIR".into()]),
            Codec::Dictionary,
        );
    }

    #[test]
    fn delta_roundtrips() {
        roundtrip(&ColumnData::Int((1..500).collect()), Codec::Delta);
        roundtrip(&ColumnData::Date(vec![10, 8, 9, 2000, 1999]), Codec::Delta);
        roundtrip(
            &ColumnData::Decimal(vec![100, 90, 80, 1_000_000]),
            Codec::Delta,
        );
    }

    #[test]
    fn lz_roundtrips() {
        roundtrip(
            &ColumnData::Text(vec![
                "the quick brown fox".into(),
                "the quick brown fox".into(),
                "jumps over the lazy dog".into(),
            ]),
            Codec::Lz,
        );
        roundtrip(&ColumnData::Int(vec![42; 1000]), Codec::Lz);
    }

    #[test]
    fn lz_compresses_repetitive_data() {
        let data: Vec<u8> = b"carefully final deposits ".repeat(100);
        let c = lz_compress(&data);
        assert!(c.len() < data.len() / 3, "{} vs {}", c.len(), data.len());
        assert_eq!(lz_decompress(&c, data.len()), data);
    }

    #[test]
    fn lz_handles_incompressible_and_tiny_inputs() {
        let data: Vec<u8> = (0..=255).collect();
        let c = lz_compress(&data);
        assert_eq!(lz_decompress(&c, data.len()), data);
        let tiny = b"ab";
        let c = lz_compress(tiny);
        assert_eq!(lz_decompress(&c, 2), tiny);
        let empty = lz_compress(b"");
        assert_eq!(lz_decompress(&empty, 0), b"");
    }

    #[test]
    fn delta_beats_plain_on_sequential_keys() {
        let keys = ColumnData::Int((1..10_000).collect());
        let plain = encode(&keys, Codec::Plain).stored_bytes();
        let delta = encode(&keys, Codec::Delta).stored_bytes();
        assert!(delta < plain / 3, "delta {delta} vs plain {plain}");
    }

    #[test]
    fn dictionary_beats_plain_on_enums_but_not_unique_text() {
        let enums = ColumnData::Text(
            (0..5000)
                .map(|i| ["AIR", "RAIL", "SHIP"][i % 3].to_string())
                .collect(),
        );
        let d = encode(&enums, Codec::Dictionary).stored_bytes();
        let p = encode(&enums, Codec::Plain).stored_bytes();
        assert!(d < p / 2, "dict {d} vs plain {p}");

        let unique = ColumnData::Text((0..2000).map(|i| format!("comment-{i:06}")).collect());
        let d = encode(&unique, Codec::Dictionary).stored_bytes();
        let p = encode(&unique, Codec::Plain).stored_bytes();
        assert!(
            d > p,
            "unique text should not benefit: dict {d} vs plain {p}"
        );
    }

    #[test]
    fn default_codecs_match_dbmsx() {
        use slicer_model::AttrKind::*;
        assert_eq!(default_codec(Int), Codec::Delta);
        assert_eq!(default_codec(Date), Codec::Delta);
        assert_eq!(default_codec(Text), Codec::Lz);
        assert_eq!(default_codec(Decimal), Codec::Lz);
    }

    #[test]
    fn fixed_width_flag() {
        assert!(Codec::Plain.fixed_width());
        assert!(Codec::Dictionary.fixed_width());
        assert!(!Codec::Delta.fixed_width());
        assert!(!Codec::Lz.fixed_width());
    }
}
