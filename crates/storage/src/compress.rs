//! Column compression codecs.
//!
//! DBMS-X (paper Table 7) defaults to LZO for strings/floats and delta
//! encoding for integers/dates, with dictionary encoding as the forced
//! fixed-width alternative. We implement the same three families:
//!
//! * [`Codec::Plain`] — fixed-width raw bytes;
//! * [`Codec::Dictionary`] — fixed-width codes into a per-column dictionary
//!   (the dictionary is charged to the stored size: near-unique columns
//!   gain nothing, matching real systems);
//! * [`Codec::Delta`] — zigzag-varint deltas for integers/dates
//!   (variable-width);
//! * [`Codec::Lz`] — an LZ77-class byte compressor with a 64 KB window and
//!   greedy hash matching, standing in for LZO (variable-width).
//!
//! The property that drives Table 7 is *fixed versus variable width*:
//! fixed-width codecs allow direct per-row offsets into a column-group
//! segment, while variable-width codecs force decoding the whole segment
//! to reconstruct any tuple. [`Codec::fixed_width`] exposes that bit.

use crate::data::ColumnData;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Compression scheme applied to one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Codec {
    /// Raw fixed-width values.
    Plain,
    /// Fixed-width dictionary codes.
    Dictionary,
    /// Zigzag-varint delta encoding (ints/dates only).
    Delta,
    /// LZ77-style byte compression (stand-in for LZO).
    Lz,
}

impl Codec {
    /// True iff rows are individually addressable (fixed byte width per
    /// row) without decoding predecessors.
    pub fn fixed_width(self) -> bool {
        matches!(self, Codec::Plain | Codec::Dictionary)
    }
}

/// One encoded column: bytes plus enough metadata to decode.
#[derive(Debug, Clone)]
pub struct EncodedColumn {
    /// Codec used.
    pub codec: Codec,
    /// Encoded payload.
    pub bytes: Bytes,
    /// Dictionary payload (values in code order), if dictionary-encoded.
    pub dict_bytes: Bytes,
    /// Number of rows.
    pub rows: usize,
    /// Number of dictionary entries (0 unless dictionary-encoded). Segment
    /// metadata, not charged to the stored size; lets cursors recover the
    /// dictionary layout without an O(rows) walk of the code stream.
    pub dict_entries: usize,
    /// Bytes per row of the raw fixed-width image this segment encodes
    /// (0 when unknown, e.g. delta). Segment metadata: lets the executor
    /// size decode scratch exactly instead of growing it token by token.
    pub raw_width: usize,
}

impl EncodedColumn {
    /// Stored size in bytes (payload + dictionary).
    pub fn stored_bytes(&self) -> u64 {
        (self.bytes.len() + self.dict_bytes.len()) as u64
    }
}

// --- fixed-width raw encoding helpers ---------------------------------

fn raw_bytes(col: &ColumnData) -> (BytesMut, usize) {
    match col {
        ColumnData::Int(v) => {
            let mut b = BytesMut::with_capacity(v.len() * 4);
            for x in v {
                b.put_i32_le(*x);
            }
            (b, 4)
        }
        ColumnData::Date(v) => {
            let mut b = BytesMut::with_capacity(v.len() * 4);
            for x in v {
                b.put_i32_le(*x);
            }
            (b, 4)
        }
        ColumnData::Decimal(v) => {
            let mut b = BytesMut::with_capacity(v.len() * 8);
            for x in v {
                b.put_i64_le(*x);
            }
            (b, 8)
        }
        ColumnData::Text(v) => {
            // Pad to the max observed width so rows stay addressable.
            let w = v.iter().map(|s| s.len()).max().unwrap_or(0).max(1);
            let mut b = BytesMut::with_capacity(v.len() * w);
            for s in v {
                b.put_slice(s.as_bytes());
                b.put_bytes(b' ', w - s.len());
            }
            (b, w)
        }
    }
}

fn decode_raw(bytes: &Bytes, rows: usize, template: &ColumnData) -> ColumnData {
    let mut buf = bytes.clone();
    match template {
        ColumnData::Int(_) => ColumnData::Int((0..rows).map(|_| buf.get_i32_le()).collect()),
        ColumnData::Date(_) => ColumnData::Date((0..rows).map(|_| buf.get_i32_le()).collect()),
        ColumnData::Decimal(_) => {
            ColumnData::Decimal((0..rows).map(|_| buf.get_i64_le()).collect())
        }
        ColumnData::Text(_) => {
            let w = bytes.len().checked_div(rows).unwrap_or(1).max(1);
            ColumnData::Text(
                (0..rows)
                    .map(|i| {
                        let s = &bytes[i * w..(i + 1) * w];
                        String::from_utf8_lossy(s).trim_end().to_string()
                    })
                    .collect(),
            )
        }
    }
}

// --- varint / zigzag ---------------------------------------------------

fn put_varint(b: &mut BytesMut, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            b.put_u8(byte);
            return;
        }
        b.put_u8(byte | 0x80);
    }
}

/// Varint read over a plain slice with an external position — the
/// streaming cursors' primitive (no per-byte view bookkeeping).
#[inline]
fn get_varint_at(data: &[u8], pos: &mut usize) -> u64 {
    let mut x = 0u64;
    let mut shift = 0;
    loop {
        let byte = data[*pos];
        *pos += 1;
        x |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return x;
        }
        shift += 7;
    }
}

#[inline]
fn zigzag(x: i64) -> u64 {
    // Shift in u64 space: `x << 1` overflows i64 for large |x|.
    ((x as u64) << 1) ^ ((x >> 63) as u64)
}

#[inline]
fn unzigzag(x: u64) -> i64 {
    ((x >> 1) as i64) ^ -((x & 1) as i64)
}

// --- LZ77-class byte compressor ----------------------------------------

const LZ_MIN_MATCH: usize = 4;
const LZ_WINDOW: usize = 1 << 16;

/// Greedy hash-chain LZ77: tokens are `(literal_len varint, literals,
/// match_len varint, match_dist varint)`; a final token may have
/// `match_len = 0`.
pub fn lz_compress(input: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(input.len() / 2 + 16);
    let mut head: Vec<u32> = vec![u32::MAX; 1 << 15];
    let hash = |w: &[u8]| -> usize {
        let x = u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
        ((x.wrapping_mul(2654435761)) >> 17) as usize & ((1 << 15) - 1)
    };
    let mut i = 0;
    let mut lit_start = 0;
    while i + LZ_MIN_MATCH <= input.len() {
        let h = hash(&input[i..i + 4]);
        let cand = head[h];
        head[h] = i as u32;
        let mut match_len = 0;
        let mut match_pos = 0usize;
        if cand != u32::MAX {
            let c = cand as usize;
            if i - c <= LZ_WINDOW && input[c..c + 4] == input[i..i + 4] {
                let max = input.len() - i;
                let mut l = 4;
                while l < max && input[c + l] == input[i + l] {
                    l += 1;
                }
                match_len = l;
                match_pos = c;
            }
        }
        if match_len >= LZ_MIN_MATCH {
            put_varint(&mut out, (i - lit_start) as u64);
            out.put_slice(&input[lit_start..i]);
            put_varint(&mut out, match_len as u64);
            put_varint(&mut out, (i - match_pos) as u64);
            i += match_len;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    // Trailing literals.
    put_varint(&mut out, (input.len() - lit_start) as u64);
    out.put_slice(&input[lit_start..]);
    put_varint(&mut out, 0); // match_len 0 = end
    put_varint(&mut out, 0);
    out.freeze()
}

/// Inverse of [`lz_compress`].
pub fn lz_decompress(input: &Bytes, expected_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(expected_len);
    lz_decompress_into(input, &mut out);
    out
}

/// Inverse of [`lz_compress`], decompressing into a caller-owned scratch
/// buffer (cleared first, capacity retained). The executor reuses one
/// scratch per partition across scans so variable-width decode allocates
/// nothing in steady state.
///
/// Copies in bulk: literals are one `extend_from_slice`, matches are
/// `extend_from_within` runs (an overlapping match — `dist < len`, the
/// RLE case — amplifies the available window per round instead of
/// copying byte-at-a-time).
pub fn lz_decompress_into(input: &Bytes, out: &mut Vec<u8>) {
    out.clear();
    let data: &[u8] = input;
    let mut pos = 0usize;
    loop {
        let lit = get_varint_at(data, &mut pos) as usize;
        out.extend_from_slice(&data[pos..pos + lit]);
        pos += lit;
        let mlen = get_varint_at(data, &mut pos) as usize;
        let dist = get_varint_at(data, &mut pos) as usize;
        if mlen == 0 {
            break;
        }
        let mut src = out.len() - dist;
        let mut remaining = mlen;
        while remaining > 0 {
            let n = remaining.min(out.len() - src);
            out.extend_from_within(src..src + n);
            src += n;
            remaining -= n;
        }
    }
}

/// Inverse of [`lz_compress`] into an exactly-sized scratch buffer: when
/// the decompressed length is known up front (`EncodedColumn::raw_width ×
/// rows`), the output is written in place through slice copies — no
/// per-token length bookkeeping or growth checks at all. Falls back to
/// the growing path when `expected` is 0 (unknown).
pub fn lz_decompress_exact(input: &Bytes, expected: usize, out: &mut Vec<u8>) {
    if expected == 0 {
        return lz_decompress_into(input, out);
    }
    out.resize(expected, 0);
    let data: &[u8] = input;
    let mut pos = 0usize;
    let mut w = 0usize;
    loop {
        let lit = get_varint_at(data, &mut pos) as usize;
        // Typical tokens are short: blind 16-byte copies (two register
        // moves, no memcpy dispatch) whenever there is slack; the extra
        // bytes are overwritten by the next token.
        if lit <= 16 && pos + 16 <= data.len() && w + 16 <= out.len() {
            let chunk: [u8; 16] = data[pos..pos + 16].try_into().expect("16-byte chunk");
            out[w..w + 16].copy_from_slice(&chunk);
        } else {
            out[w..w + lit].copy_from_slice(&data[pos..pos + lit]);
        }
        pos += lit;
        w += lit;
        let mlen = get_varint_at(data, &mut pos) as usize;
        let dist = get_varint_at(data, &mut pos) as usize;
        if mlen == 0 {
            break;
        }
        if dist >= mlen && w + mlen + 16 <= out.len() && mlen <= 64 {
            // Non-overlapping short match with slack: 16-byte strides.
            let mut k = 0;
            while k < mlen {
                let chunk: [u8; 16] = out[w - dist + k..w - dist + k + 16]
                    .try_into()
                    .expect("16-byte chunk");
                out[w + k..w + k + 16].copy_from_slice(&chunk);
                k += 16;
            }
            w += mlen;
        } else {
            let mut src = w - dist;
            let mut remaining = mlen;
            while remaining > 0 {
                // An overlapping match (dist < len) amplifies per round.
                let n = remaining.min(w - src);
                out.copy_within(src..src + n, w);
                src += n;
                w += n;
                remaining -= n;
            }
        }
    }
    debug_assert_eq!(w, expected, "decompressed length mismatch");
}

/// Walk an LZ token stream without expanding it: parses every token and
/// accumulates the decompressed length. This is the minimal work a reader
/// must do to recover row addresses inside a variable-width segment (the
/// whole-partition-decode penalty for segments whose *values* nobody
/// asked for): every encoded byte is still visited, nothing is
/// materialized.
pub fn lz_walk(input: &Bytes) -> u64 {
    // Slice-narrowing cursor: single-byte varints (the overwhelmingly
    // common case for token lengths) take the one-compare fast path.
    #[inline]
    fn varint(s: &mut &[u8]) -> usize {
        let b = s[0];
        *s = &s[1..];
        if b < 0x80 {
            return b as usize;
        }
        let mut x = (b & 0x7f) as usize;
        let mut shift = 7;
        loop {
            let b = s[0];
            *s = &s[1..];
            x |= ((b & 0x7f) as usize) << shift;
            if b < 0x80 {
                return x;
            }
            shift += 7;
        }
    }
    let mut s: &[u8] = input;
    let mut total = 0u64;
    loop {
        let lit = varint(&mut s);
        s = &s[lit..];
        total += lit as u64;
        let mlen = varint(&mut s);
        let _dist = varint(&mut s);
        if mlen == 0 {
            return total;
        }
        total += mlen as u64;
    }
}

/// Stream a delta segment's decoded values through `f` with a
/// slice-narrowing cursor (single-byte varints — small deltas, the common
/// case for sorted keys and clustered dates — take a one-compare fast
/// path). Semantically identical to iterating [`DeltaCursor`]; this is
/// the executor's fingerprint-producing hot loop.
pub fn delta_for_each(enc: &EncodedColumn, mut f: impl FnMut(i64)) {
    debug_assert_eq!(enc.codec, Codec::Delta);
    let mut s: &[u8] = &enc.bytes;
    let mut prev = 0i64;
    for _ in 0..enc.rows {
        let b = s[0];
        s = &s[1..];
        let raw = if b < 0x80 {
            b as u64
        } else {
            let mut x = (b & 0x7f) as u64;
            let mut shift = 7;
            loop {
                let b = s[0];
                s = &s[1..];
                x |= ((b & 0x7f) as u64) << shift;
                if b < 0x80 {
                    break x;
                }
                shift += 7;
            }
        };
        prev = prev.wrapping_add(unzigzag(raw));
        f(prev);
    }
}

/// Walk a delta varint stream without decoding it: counts value
/// boundaries (terminal varint bytes), i.e. the row-addressing work for a
/// delta segment whose values are not referenced.
pub fn delta_walk(input: &Bytes) -> u64 {
    input.iter().filter(|&&b| b & 0x80 == 0).count() as u64
}

// --- streaming cursors --------------------------------------------------

/// Streaming decoder over a [`Codec::Delta`] segment: yields the decoded
/// `i64` values one at a time with O(1) state (byte position + running
/// prefix sum), so the executor can fingerprint a delta column without
/// ever materializing a `ColumnData`.
#[derive(Debug, Clone)]
pub struct DeltaCursor {
    buf: Bytes,
    pos: usize,
    prev: i64,
    remaining: usize,
}

impl DeltaCursor {
    /// Open a cursor over `enc` (must be delta-encoded).
    pub fn new(enc: &EncodedColumn) -> DeltaCursor {
        debug_assert_eq!(enc.codec, Codec::Delta);
        DeltaCursor {
            buf: enc.bytes.clone(),
            pos: 0,
            prev: 0,
            remaining: enc.rows,
        }
    }
}

impl Iterator for DeltaCursor {
    type Item = i64;

    #[inline]
    fn next(&mut self) -> Option<i64> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let delta = unzigzag(get_varint_at(&self.buf, &mut self.pos));
        self.prev = self.prev.wrapping_add(delta);
        Some(self.prev)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Physical layout of a [`Codec::Dictionary`] segment: code width from
/// the code stream size, entry count from the segment metadata (falling
/// back to an O(rows) walk of the code stream for hand-built segments,
/// which is how the naive decoder always recovers it), value width from
/// the dictionary size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DictLayout {
    /// Bytes per code in the code stream (1, 2 or 4).
    pub code_width: usize,
    /// Number of dictionary entries.
    pub entries: usize,
    /// Bytes per dictionary entry (the column's fixed value width).
    pub value_width: usize,
}

impl DictLayout {
    /// Recover the layout of `enc` (must be dictionary-encoded).
    pub fn of(enc: &EncodedColumn) -> DictLayout {
        debug_assert_eq!(enc.codec, Codec::Dictionary);
        let code_width = enc.bytes.len().checked_div(enc.rows).unwrap_or(1).max(1);
        let entries = if enc.dict_entries > 0 {
            enc.dict_entries
        } else {
            dict_entry_count(&enc.bytes, enc.rows, code_width)
        };
        let value_width = enc
            .dict_bytes
            .len()
            .checked_div(entries)
            .unwrap_or(1)
            .max(1);
        DictLayout {
            code_width,
            entries,
            value_width,
        }
    }

    /// The dictionary entry bytes for code `c`.
    #[inline]
    pub fn entry<'a>(&self, dict_bytes: &'a [u8], c: usize) -> &'a [u8] {
        &dict_bytes[c * self.value_width..(c + 1) * self.value_width]
    }
}

/// Read the `i`-th code from a dictionary code stream of `code_width`.
#[inline]
pub fn dict_code(codes: &[u8], code_width: usize, i: usize) -> usize {
    match code_width {
        1 => codes[i] as usize,
        2 => u16::from_le_bytes([codes[2 * i], codes[2 * i + 1]]) as usize,
        _ => u32::from_le_bytes([
            codes[4 * i],
            codes[4 * i + 1],
            codes[4 * i + 2],
            codes[4 * i + 3],
        ]) as usize,
    }
}

// --- public encode / decode --------------------------------------------

/// Encode `col` with `codec`. Delta on text falls back to LZ; delta on
/// decimals uses 64-bit deltas.
pub fn encode(col: &ColumnData, codec: Codec) -> EncodedColumn {
    let rows = col.len();
    match codec {
        Codec::Plain => {
            let (b, w) = raw_bytes(col);
            EncodedColumn {
                codec,
                bytes: b.freeze(),
                dict_bytes: Bytes::new(),
                rows,
                dict_entries: 0,
                raw_width: w,
            }
        }
        Codec::Dictionary => {
            // Build value dictionary over the raw fixed-width form.
            let (raw, w) = raw_bytes(col);
            let raw = raw.freeze();
            let mut dict: Vec<&[u8]> = Vec::new();
            let mut codes: Vec<u32> = Vec::with_capacity(rows);
            let mut index: std::collections::HashMap<&[u8], u32> = std::collections::HashMap::new();
            for i in 0..rows {
                let v = &raw[i * w..(i + 1) * w];
                let code = *index.entry(v).or_insert_with(|| {
                    dict.push(v);
                    (dict.len() - 1) as u32
                });
                codes.push(code);
            }
            let code_width: usize = match dict.len() {
                0..=0xFF => 1,
                0x100..=0xFFFF => 2,
                _ => 4,
            };
            let mut bytes = BytesMut::with_capacity(rows * code_width);
            for c in &codes {
                match code_width {
                    1 => bytes.put_u8(*c as u8),
                    2 => bytes.put_u16_le(*c as u16),
                    _ => bytes.put_u32_le(*c),
                }
            }
            let mut dict_bytes = BytesMut::with_capacity(dict.len() * w);
            for v in &dict {
                dict_bytes.put_slice(v);
            }
            EncodedColumn {
                codec,
                bytes: bytes.freeze(),
                dict_bytes: dict_bytes.freeze(),
                rows,
                dict_entries: dict.len(),
                raw_width: w,
            }
        }
        Codec::Delta => match col {
            ColumnData::Int(v) => delta_encode(v.iter().map(|&x| x as i64), rows, codec),
            ColumnData::Date(v) => delta_encode(v.iter().map(|&x| x as i64), rows, codec),
            ColumnData::Decimal(v) => delta_encode(v.iter().copied(), rows, codec),
            ColumnData::Text(_) => encode(col, Codec::Lz),
        },
        Codec::Lz => {
            let (raw, w) = raw_bytes(col);
            EncodedColumn {
                codec,
                bytes: lz_compress(&raw),
                dict_bytes: Bytes::new(),
                rows,
                dict_entries: 0,
                raw_width: w,
            }
        }
    }
}

fn delta_encode(values: impl Iterator<Item = i64>, rows: usize, codec: Codec) -> EncodedColumn {
    let mut b = BytesMut::new();
    let mut prev = 0i64;
    for x in values {
        // Wrapping difference: lossless over the full i64 range because the
        // decoder adds back with the same wrapping semantics.
        put_varint(&mut b, zigzag(x.wrapping_sub(prev)));
        prev = x;
    }
    EncodedColumn {
        codec,
        bytes: b.freeze(),
        dict_bytes: Bytes::new(),
        rows,
        dict_entries: 0,
        raw_width: 0,
    }
}

/// Decode a column previously produced by [`encode`]. `template` supplies
/// the value type (an empty column of the right variant suffices).
pub fn decode(enc: &EncodedColumn, template: &ColumnData) -> ColumnData {
    match enc.codec {
        Codec::Plain => decode_raw(&enc.bytes, enc.rows, template),
        Codec::Dictionary => {
            // Seed-era recovery, kept verbatim: code width from the
            // payload size, entry count from an O(rows) walk for the
            // highest code (the naive path's cost profile — cursors use
            // the recorded `dict_entries` instead).
            let rows = enc.rows;
            let w = enc.bytes.len().checked_div(rows).unwrap_or(1).max(1);
            let entries = dict_entry_count(&enc.bytes, rows, w);
            let value_w = enc
                .dict_bytes
                .len()
                .checked_div(entries)
                .unwrap_or(1)
                .max(1);
            let mut out_raw = BytesMut::with_capacity(rows * value_w);
            for i in 0..rows {
                let code = dict_code(&enc.bytes, w, i);
                out_raw.put_slice(&enc.dict_bytes[code * value_w..(code + 1) * value_w]);
            }
            decode_raw(&out_raw.freeze(), rows, template)
        }
        Codec::Delta => {
            let vals: Vec<i64> = DeltaCursor::new(enc).collect();
            match template {
                ColumnData::Int(_) => ColumnData::Int(vals.iter().map(|&x| x as i32).collect()),
                ColumnData::Date(_) => ColumnData::Date(vals.iter().map(|&x| x as i32).collect()),
                ColumnData::Decimal(_) => ColumnData::Decimal(vals),
                ColumnData::Text(_) => unreachable!("delta never encodes text"),
            }
        }
        Codec::Lz => {
            let raw = lz_decompress(&enc.bytes, 0);
            decode_raw(&Bytes::from(raw), enc.rows, template)
        }
    }
}

fn dict_entry_count(codes: &Bytes, rows: usize, code_width: usize) -> usize {
    let mut max = 0usize;
    for i in 0..rows {
        let code = match code_width {
            1 => codes[i] as usize,
            2 => u16::from_le_bytes([codes[2 * i], codes[2 * i + 1]]) as usize,
            _ => u32::from_le_bytes([
                codes[4 * i],
                codes[4 * i + 1],
                codes[4 * i + 2],
                codes[4 * i + 3],
            ]) as usize,
        };
        max = max.max(code + 1);
    }
    max
}

/// DBMS-X's default scheme for a column kind: delta for ints/dates, LZ for
/// strings and decimals (paper Table 7, "Default (LZO or Delta)").
pub fn default_codec(kind: slicer_model::AttrKind) -> Codec {
    match kind {
        slicer_model::AttrKind::Int | slicer_model::AttrKind::Date => Codec::Delta,
        slicer_model::AttrKind::Decimal | slicer_model::AttrKind::Text => Codec::Lz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(col: &ColumnData, codec: Codec) {
        let enc = encode(col, codec);
        let template = match col {
            ColumnData::Int(_) => ColumnData::Int(vec![]),
            ColumnData::Decimal(_) => ColumnData::Decimal(vec![]),
            ColumnData::Date(_) => ColumnData::Date(vec![]),
            ColumnData::Text(_) => ColumnData::Text(vec![]),
        };
        let dec = decode(&enc, &template);
        assert_eq!(col, &dec, "roundtrip failed for {codec:?}");
    }

    #[test]
    fn plain_roundtrips_all_types() {
        roundtrip(&ColumnData::Int(vec![1, -5, 1000, i32::MAX]), Codec::Plain);
        roundtrip(&ColumnData::Decimal(vec![0, -1, 123456789]), Codec::Plain);
        roundtrip(&ColumnData::Date(vec![0, 2526]), Codec::Plain);
        roundtrip(
            &ColumnData::Text(vec!["hello".into(), "a".into(), "world wide".into()]),
            Codec::Plain,
        );
    }

    #[test]
    fn dictionary_roundtrips() {
        roundtrip(&ColumnData::Int(vec![5, 5, 7, 5, 7, 9]), Codec::Dictionary);
        roundtrip(
            &ColumnData::Text(vec!["AIR".into(), "RAIL".into(), "AIR".into()]),
            Codec::Dictionary,
        );
    }

    #[test]
    fn delta_roundtrips() {
        roundtrip(&ColumnData::Int((1..500).collect()), Codec::Delta);
        roundtrip(&ColumnData::Date(vec![10, 8, 9, 2000, 1999]), Codec::Delta);
        roundtrip(
            &ColumnData::Decimal(vec![100, 90, 80, 1_000_000]),
            Codec::Delta,
        );
    }

    #[test]
    fn lz_roundtrips() {
        roundtrip(
            &ColumnData::Text(vec![
                "the quick brown fox".into(),
                "the quick brown fox".into(),
                "jumps over the lazy dog".into(),
            ]),
            Codec::Lz,
        );
        roundtrip(&ColumnData::Int(vec![42; 1000]), Codec::Lz);
    }

    #[test]
    fn lz_compresses_repetitive_data() {
        let data: Vec<u8> = b"carefully final deposits ".repeat(100);
        let c = lz_compress(&data);
        assert!(c.len() < data.len() / 3, "{} vs {}", c.len(), data.len());
        assert_eq!(lz_decompress(&c, data.len()), data);
    }

    #[test]
    fn lz_handles_incompressible_and_tiny_inputs() {
        let data: Vec<u8> = (0..=255).collect();
        let c = lz_compress(&data);
        assert_eq!(lz_decompress(&c, data.len()), data);
        let tiny = b"ab";
        let c = lz_compress(tiny);
        assert_eq!(lz_decompress(&c, 2), tiny);
        let empty = lz_compress(b"");
        assert_eq!(lz_decompress(&empty, 0), b"");
    }

    #[test]
    fn delta_beats_plain_on_sequential_keys() {
        let keys = ColumnData::Int((1..10_000).collect());
        let plain = encode(&keys, Codec::Plain).stored_bytes();
        let delta = encode(&keys, Codec::Delta).stored_bytes();
        assert!(delta < plain / 3, "delta {delta} vs plain {plain}");
    }

    #[test]
    fn dictionary_beats_plain_on_enums_but_not_unique_text() {
        let enums = ColumnData::Text(
            (0..5000)
                .map(|i| ["AIR", "RAIL", "SHIP"][i % 3].to_string())
                .collect(),
        );
        let d = encode(&enums, Codec::Dictionary).stored_bytes();
        let p = encode(&enums, Codec::Plain).stored_bytes();
        assert!(d < p / 2, "dict {d} vs plain {p}");

        let unique = ColumnData::Text((0..2000).map(|i| format!("comment-{i:06}")).collect());
        let d = encode(&unique, Codec::Dictionary).stored_bytes();
        let p = encode(&unique, Codec::Plain).stored_bytes();
        assert!(
            d > p,
            "unique text should not benefit: dict {d} vs plain {p}"
        );
    }

    #[test]
    fn default_codecs_match_dbmsx() {
        use slicer_model::AttrKind::*;
        assert_eq!(default_codec(Int), Codec::Delta);
        assert_eq!(default_codec(Date), Codec::Delta);
        assert_eq!(default_codec(Text), Codec::Lz);
        assert_eq!(default_codec(Decimal), Codec::Lz);
    }

    #[test]
    fn delta_cursor_streams_decoded_values() {
        let col = ColumnData::Int(vec![5, 3, 100, -40, i32::MAX, i32::MIN]);
        let enc = encode(&col, Codec::Delta);
        let streamed: Vec<i64> = DeltaCursor::new(&enc).collect();
        assert_eq!(
            streamed,
            vec![5, 3, 100, -40, i32::MAX as i64, i32::MIN as i64]
        );
    }

    #[test]
    fn dict_layout_recovers_widths() {
        let col = ColumnData::Text(vec!["AIR".into(), "RAIL".into(), "AIR".into()]);
        let enc = encode(&col, Codec::Dictionary);
        let l = DictLayout::of(&enc);
        assert_eq!(l.code_width, 1);
        assert_eq!(l.entries, 2);
        assert_eq!(l.value_width, 4); // padded to max observed width
        assert_eq!(dict_code(&enc.bytes, l.code_width, 2), 0);
        assert_eq!(l.entry(&enc.dict_bytes, 1), b"RAIL");
    }

    #[test]
    fn lz_decompress_into_reuses_scratch() {
        let data: Vec<u8> = b"pending deposits boost ".repeat(50);
        let c = lz_compress(&data);
        let mut scratch = Vec::new();
        lz_decompress_into(&c, &mut scratch);
        assert_eq!(scratch, data);
        // Second use with stale contents: cleared, not appended.
        lz_decompress_into(&c, &mut scratch);
        assert_eq!(scratch, data);
    }

    #[test]
    fn fixed_width_flag() {
        assert!(Codec::Plain.fixed_width());
        assert!(Codec::Dictionary.fixed_width());
        assert!(!Codec::Delta.fixed_width());
        assert!(!Codec::Lz.fixed_width());
    }
}
