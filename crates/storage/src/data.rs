//! Typed column data and the deterministic TPC-H-flavored generator.
//!
//! The paper loads dbgen-generated TPC-H data into DBMS-X; we cannot ship
//! dbgen output, so this generator produces synthetic data with the same
//! *compression-relevant* properties: sequential primary keys (delta-friendly),
//! uniform foreign keys (delta-hostile), low-cardinality flags/enums
//! (dictionary-friendly) and high-cardinality word-salad comments
//! (dictionary-hostile, LZ-friendly). Generation is seeded per
//! (table, column) — identical schemas yield identical data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use slicer_model::{AttrKind, TableSchema};

/// FNV-1a offset basis — the seed of every row/cell fingerprint.
pub const FNV_OFFSET: u64 = 0xcbf29ce484222325;
/// FNV-1a prime — the mix multiplier of every row/cell fingerprint.
pub const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a over `bytes`, the cell fingerprint primitive. Fixed-width values
/// fingerprint their little-endian byte image, so the executor can hash
/// straight out of a `Plain` segment without decoding.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// [`fnv1a`] over a fixed-size array: the const length lets the compiler
/// fully unroll the byte loop, which matters in the executor's per-cell
/// hot path.
#[inline]
pub fn fnv1a_n<const N: usize>(bytes: [u8; N]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut i = 0;
    while i < N {
        h ^= bytes[i] as u64;
        h = h.wrapping_mul(FNV_PRIME);
        i += 1;
    }
    h
}

/// Fingerprint of a space-padded fixed-width text cell, identical to
/// decoding it to a `String` (UTF-8-lossy, trailing whitespace trimmed)
/// and fingerprinting its bytes — but without allocating in the common
/// valid-UTF-8 case.
#[inline]
pub fn text_fingerprint(padded: &[u8]) -> u64 {
    match std::str::from_utf8(padded) {
        Ok(s) => fnv1a(s.trim_end().as_bytes()),
        Err(_) => fnv1a(String::from_utf8_lossy(padded).trim_end().as_bytes()),
    }
}

/// One column of materialized values.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 32-bit integers (keys, quantities, sizes).
    Int(Vec<i32>),
    /// Fixed-point decimals in cents.
    Decimal(Vec<i64>),
    /// Dates as days since 1992-01-01.
    Date(Vec<i32>),
    /// Fixed-max-width text.
    Text(Vec<String>),
}

impl ColumnData {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Decimal(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Text(v) => v.len(),
        }
    }

    /// True iff the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A stable 64-bit fingerprint of row `i` (FNV-style), used by the
    /// executor to checksum scans without allocating. Defined in terms of
    /// [`fnv1a`] so segment cursors can reproduce it from encoded bytes.
    #[inline]
    pub fn fingerprint(&self, i: usize) -> u64 {
        match self {
            ColumnData::Int(v) => fnv1a(&v[i].to_le_bytes()),
            ColumnData::Decimal(v) => fnv1a(&v[i].to_le_bytes()),
            ColumnData::Date(v) => fnv1a(&v[i].to_le_bytes()),
            ColumnData::Text(v) => fnv1a(v[i].as_bytes()),
        }
    }
}

/// A fully materialized table: one [`ColumnData`] per schema attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct TableData {
    /// Columns in schema order.
    pub columns: Vec<ColumnData>,
    /// Row count (equal across columns).
    pub rows: usize,
}

/// Word pool for generated text (TPC-H's comment vocabulary flavor).
const WORDS: &[&str] = &[
    "the",
    "furiously",
    "carefully",
    "quickly",
    "blithely",
    "slyly",
    "ironic",
    "final",
    "express",
    "regular",
    "special",
    "pending",
    "bold",
    "even",
    "silent",
    "unusual",
    "packages",
    "deposits",
    "requests",
    "accounts",
    "instructions",
    "foxes",
    "pinto",
    "beans",
    "theodolites",
    "platelets",
    "asymptotes",
    "dependencies",
    "ideas",
    "sauternes",
    "sleep",
    "haggle",
    "nag",
    "boost",
    "wake",
    "cajole",
    "integrate",
    "detect",
    "doze",
    "among",
    "across",
    "above",
    "against",
    "along",
];

const ENUM_POOL: &[&str] = &[
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
    "RAIL",
    "AIR",
    "MAIL",
    "SHIP",
    "TRUCK",
    "FOB",
    "NONE",
    "DELIVER IN PERSON",
    "COLLECT COD",
    "TAKE BACK RETURN",
    "1-URGENT",
    "2-HIGH",
    "3-MEDIUM",
    "4-NOT SPECIFIED",
    "5-LOW",
];

fn words_to_width(rng: &mut StdRng, width: usize) -> String {
    let mut s = String::with_capacity(width);
    while s.len() < width {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    s.truncate(width);
    s
}

/// Generate a column for `attr` of `schema` with `rows` rows.
///
/// Heuristics by name/kind, mirroring TPC-H data shapes:
/// * `*Key` matching the table's own key → sequential `1..=rows`;
/// * other `Int` → uniform random (foreign keys, quantities, sizes);
/// * `Date` → uniform in the TPC-H 1992–1998 window, mildly clustered;
/// * short `Text` (≤ 15 B) → low-cardinality enums (dictionary-friendly);
/// * long `Text` → word salad (LZ-friendly, dictionary-hostile).
fn generate_column(schema: &TableSchema, attr_idx: usize, rows: usize, seed: u64) -> ColumnData {
    let attr = &schema.attributes()[attr_idx];
    let mut rng = StdRng::seed_from_u64(seed ^ (attr_idx as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let own_key = format!("{}Key", schema.name());
    match attr.kind {
        AttrKind::Int => {
            if attr.name.eq_ignore_ascii_case(&own_key)
                || (attr_idx == 0 && attr.name.ends_with("Key"))
            {
                ColumnData::Int((1..=rows as i32).collect())
            } else {
                let hi = (rows as i32).max(50);
                ColumnData::Int((0..rows).map(|_| rng.gen_range(1..=hi)).collect())
            }
        }
        AttrKind::Decimal => {
            ColumnData::Decimal((0..rows).map(|_| rng.gen_range(100..10_000_000)).collect())
        }
        AttrKind::Date => {
            // 2526 distinct days, gently increasing with row position so
            // deltas stay small for clustered fact tables.
            let span = 2526i32;
            ColumnData::Date(
                (0..rows)
                    .map(|i| {
                        let base = (i as f64 / rows.max(1) as f64 * span as f64) as i32;
                        (base + rng.gen_range(-30i32..=30)).clamp(0, span)
                    })
                    .collect(),
            )
        }
        AttrKind::Text => {
            let width = attr.size as usize;
            if width <= 15 {
                ColumnData::Text(
                    (0..rows)
                        .map(|_| {
                            let mut s = ENUM_POOL[rng.gen_range(0..ENUM_POOL.len())].to_string();
                            s.truncate(width);
                            s
                        })
                        .collect(),
                )
            } else {
                ColumnData::Text((0..rows).map(|_| words_to_width(&mut rng, width)).collect())
            }
        }
    }
}

/// Generate all columns of `schema` with `rows` rows (overriding the
/// schema's nominal row count, so callers can scale down for tests).
///
/// Columns are generated in parallel, one rayon task per column. Each
/// column's RNG is seeded independently from `(seed, column index)`, so
/// the result is byte-identical to [`generate_table_seq`] regardless of
/// thread count — larger scale factors become benchable without changing
/// a single generated byte.
pub fn generate_table(schema: &TableSchema, rows: usize, seed: u64) -> TableData {
    let columns = (0..schema.attr_count())
        .into_par_iter()
        .map(|i| generate_column(schema, i, rows, seed))
        .collect();
    TableData { columns, rows }
}

/// Sequential oracle for [`generate_table`]: same column-at-a-time loop
/// the engine shipped with, kept so the parallel path's byte-identity is
/// property-testable.
pub fn generate_table_seq(schema: &TableSchema, rows: usize, seed: u64) -> TableData {
    let columns = (0..schema.attr_count())
        .map(|i| generate_column(schema, i, rows, seed))
        .collect();
    TableData { columns, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicer_model::TableSchema;

    fn schema() -> TableSchema {
        TableSchema::builder("Orders", 1000)
            .attr("OrdersKey", 4, AttrKind::Int)
            .attr("CustKey", 4, AttrKind::Int)
            .attr("TotalPrice", 8, AttrKind::Decimal)
            .attr("OrderDate", 4, AttrKind::Date)
            .attr("ShipMode", 10, AttrKind::Text)
            .attr("Comment", 79, AttrKind::Text)
            .build()
            .unwrap()
    }

    #[test]
    fn deterministic_generation() {
        let s = schema();
        assert_eq!(generate_table(&s, 500, 7), generate_table(&s, 500, 7));
    }

    #[test]
    fn parallel_generation_matches_sequential() {
        let s = schema();
        for seed in [0, 7, 0xC0FFEE] {
            assert_eq!(
                generate_table(&s, 700, seed),
                generate_table_seq(&s, 700, seed)
            );
        }
    }

    #[test]
    fn fingerprint_helpers_match_column_fingerprint() {
        let ints = ColumnData::Int(vec![42, -7]);
        assert_eq!(ints.fingerprint(0), fnv1a(&42i32.to_le_bytes()));
        let text = ColumnData::Text(vec!["AIR".into()]);
        // Padded fixed-width image of "AIR" at width 5.
        assert_eq!(text.fingerprint(0), text_fingerprint(b"AIR  "));
        assert_eq!(fnv1a(b""), FNV_OFFSET);
    }

    #[test]
    fn seed_changes_data() {
        let s = schema();
        assert_ne!(generate_table(&s, 500, 7), generate_table(&s, 500, 8));
    }

    #[test]
    fn primary_key_is_sequential() {
        let s = schema();
        let t = generate_table(&s, 100, 1);
        match &t.columns[0] {
            ColumnData::Int(v) => assert_eq!(v[..5], [1, 2, 3, 4, 5]),
            other => panic!("expected ints, got {other:?}"),
        }
    }

    #[test]
    fn short_text_is_low_cardinality_long_text_is_not() {
        let s = schema();
        let t = generate_table(&s, 2000, 1);
        let distinct = |c: &ColumnData| -> usize {
            match c {
                ColumnData::Text(v) => {
                    let mut u: Vec<&String> = v.iter().collect();
                    u.sort();
                    u.dedup();
                    u.len()
                }
                _ => panic!("expected text"),
            }
        };
        assert!(distinct(&t.columns[4]) <= ENUM_POOL.len());
        assert!(
            distinct(&t.columns[5]) > 1000,
            "comments should be near-unique"
        );
    }

    #[test]
    fn text_respects_declared_width() {
        let s = schema();
        let t = generate_table(&s, 300, 1);
        if let ColumnData::Text(v) = &t.columns[5] {
            assert!(v.iter().all(|s| s.len() <= 79));
        }
    }

    #[test]
    fn dates_stay_in_window_and_mostly_increase() {
        let s = schema();
        let t = generate_table(&s, 1000, 1);
        if let ColumnData::Date(v) = &t.columns[3] {
            assert!(v.iter().all(|&d| (0..=2526).contains(&d)));
            assert!(v[999] > v[0], "clustered dates should trend upward");
        }
    }

    #[test]
    fn fingerprint_distinguishes_rows() {
        let c = ColumnData::Int(vec![1, 2, 3]);
        assert_ne!(c.fingerprint(0), c.fingerprint(1));
        let t = ColumnData::Text(vec!["abc".into(), "abd".into()]);
        assert_ne!(t.fingerprint(0), t.fingerprint(1));
    }
}
