//! Pluggable durable-storage backends and crash-fault injection.
//!
//! A durable [`crate::engine::StoredTable`] persists itself into a [`Dir`]:
//! a flat namespace of files supporting atomic whole-file replacement
//! (manifest publication), append (the WAL), and enumeration (orphan
//! cleanup after a crash). Two real implementations ship:
//!
//! * [`FsDir`] — a directory on the local filesystem; `write_atomic` is
//!   write-to-temp + rename, the classic publish primitive;
//! * [`MemDir`] — an in-process map, for tests and benchmarks that need
//!   thousands of tables without touching disk.
//!
//! [`CrashDir`] wraps a [`MemDir`] with the fault-injection model the
//! crash-recovery suite is built on: the engine calls
//! [`Dir::crash_point`] at every durability-ordering boundary, and an
//! armed `CrashDir` *captures the durable image at that instant* and
//! black-holes every later write — exactly what a power cut after that
//! point would leave on disk. The test then reopens the captured image
//! with [`crate::engine::StoredTable::open`] and compares scans against
//! an oracle that never crashed.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The durability-ordering boundaries where the engine announces "a crash
/// here would be interesting" (see [`Dir::crash_point`]). Each point is a
/// distinct on-disk intermediate state the recovery path must handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// An ingest batch is in the WAL but the in-memory snapshot that
    /// acknowledges it was never published. Recovery must replay it.
    AfterWalAppend,
    /// A repartition has written every rebuilt partition file but not the
    /// manifest. Recovery must serve the pre-move snapshot untouched.
    BeforeSnapshotPublish,
    /// A repartition has written only *some* of its rebuilt partition
    /// files. Recovery must serve the pre-move snapshot untouched.
    MidFold,
    /// The new manifest is published but the superseded WAL and partition
    /// files were not yet removed. Recovery must serve the post-move
    /// snapshot and ignore (and clean) the orphans.
    MidTruncate,
}

impl CrashPoint {
    /// Every injection point, in write-path order.
    pub const ALL: [CrashPoint; 4] = [
        CrashPoint::AfterWalAppend,
        CrashPoint::MidFold,
        CrashPoint::BeforeSnapshotPublish,
        CrashPoint::MidTruncate,
    ];
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CrashPoint::AfterWalAppend => "after-wal-append",
            CrashPoint::BeforeSnapshotPublish => "before-snapshot-publish",
            CrashPoint::MidFold => "mid-fold",
            CrashPoint::MidTruncate => "mid-truncate",
        };
        f.write_str(s)
    }
}

/// Errors surfaced by the durable write path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An underlying backend I/O failure.
    Io(String),
    /// A persisted structure (manifest, partition file, WAL record past
    /// the recoverable tail) failed validation.
    Corrupt(String),
    /// An ingest batch that does not fit the schema or references rows
    /// that do not exist.
    InvalidBatch(String),
    /// A fleet-level route to a table that is not registered.
    UnknownTable(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(m) => write!(f, "storage I/O error: {m}"),
            StorageError::Corrupt(m) => write!(f, "corrupt persisted state: {m}"),
            StorageError::InvalidBatch(m) => write!(f, "invalid ingest batch: {m}"),
            StorageError::UnknownTable(t) => write!(f, "unknown table: {t}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> StorageError {
        StorageError::Io(e.to_string())
    }
}

/// A flat durable namespace: the only storage interface the engine knows.
///
/// Implementations must make `write_atomic` all-or-nothing (a reader — or
/// a recovery — sees either the old content or the new, never a prefix)
/// and `append` ordered (bytes appear in append order; a crash may keep
/// any *prefix* of an append, which is exactly the torn-tail case the WAL
/// format recovers from).
pub trait Dir: Send + Sync {
    /// Read a whole file; `None` if it does not exist.
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>>;
    /// Replace a file's content atomically (publish primitive).
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()>;
    /// Append bytes to a file, creating it if missing.
    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()>;
    /// Remove a file; succeeds silently if it does not exist.
    fn remove(&self, name: &str) -> io::Result<()>;
    /// Enumerate every file name in the namespace.
    fn list(&self) -> io::Result<Vec<String>>;
    /// Fault-injection hook: the engine calls this at every durability
    /// boundary in [`CrashPoint`]. Real backends ignore it; a
    /// [`CrashDir`] armed for `point` snapshots its durable image here
    /// and drops every subsequent write.
    fn crash_point(&self, point: CrashPoint) {
        let _ = point;
    }
}

/// An in-memory [`Dir`]: a mutex-guarded map from name to bytes.
#[derive(Debug, Default)]
pub struct MemDir {
    files: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemDir {
    /// An empty in-memory directory.
    pub fn new() -> MemDir {
        MemDir::default()
    }

    /// A directory pre-populated from a captured image (see
    /// [`CrashDir::image_dir`]).
    pub fn from_image(image: BTreeMap<String, Vec<u8>>) -> MemDir {
        MemDir {
            files: Mutex::new(image),
        }
    }

    /// A deep copy of the current contents.
    pub fn image(&self) -> BTreeMap<String, Vec<u8>> {
        self.files.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

impl Dir for MemDir {
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        Ok(self
            .files
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned())
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.files
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.files
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.files
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(name);
        Ok(())
    }

    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self
            .files
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect())
    }
}

/// A [`Dir`] rooted at a filesystem directory. File names are flat (no
/// separators); `write_atomic` stages into a dot-temp sibling and renames
/// over the target, which is atomic on POSIX filesystems.
#[derive(Debug)]
pub struct FsDir {
    root: PathBuf,
}

impl FsDir {
    /// Open (creating if needed) a directory-backed store at `root`.
    pub fn open(root: impl AsRef<Path>) -> io::Result<FsDir> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(FsDir { root })
    }

    fn path(&self, name: &str) -> io::Result<PathBuf> {
        if name.is_empty() || name.contains(['/', '\\']) || name.starts_with('.') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("invalid store file name {name:?}"),
            ));
        }
        Ok(self.root.join(name))
    }
}

impl Dir for FsDir {
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(self.path(name)?) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let target = self.path(name)?;
        let tmp = self.root.join(format!(".{name}.tmp"));
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, &target)
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name)?)?;
        f.write_all(bytes)
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        match std::fs::remove_file(self.path(name)?) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                if !name.starts_with('.') {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }
}

/// A fault-injecting [`Dir`] over a [`MemDir`].
///
/// Arm it with [`CrashDir::arm`]; when the engine reaches that
/// [`CrashPoint`], the wrapper captures the durable image as it exists at
/// that instant and silently discards every later mutation — the process
/// keeps running (the engine's in-memory state stays coherent), but
/// nothing it does after the "crash" reaches storage. The test then
/// reopens [`CrashDir::image_dir`] as the post-power-cut state.
#[derive(Debug, Default)]
pub struct CrashDir {
    inner: MemDir,
    armed: Mutex<Option<CrashPoint>>,
    image: Mutex<Option<BTreeMap<String, Vec<u8>>>>,
}

impl CrashDir {
    /// An empty, un-armed crash-injecting directory.
    pub fn new() -> CrashDir {
        CrashDir::default()
    }

    /// Arm the next occurrence of `point` (replacing any previous arming).
    pub fn arm(&self, point: CrashPoint) {
        *self.armed.lock().unwrap_or_else(|e| e.into_inner()) = Some(point);
    }

    /// True once an armed crash point has fired.
    pub fn crashed(&self) -> bool {
        self.image
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }

    /// The durable state a reboot would find: the image captured at the
    /// crash if one fired, the live contents otherwise.
    pub fn image_dir(&self) -> MemDir {
        let image = self
            .image
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
            .unwrap_or_else(|| self.inner.image());
        MemDir::from_image(image)
    }
}

impl Dir for CrashDir {
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        self.inner.read(name)
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        if self.crashed() {
            return Ok(());
        }
        self.inner.write_atomic(name, bytes)
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        if self.crashed() {
            return Ok(());
        }
        self.inner.append(name, bytes)
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        if self.crashed() {
            return Ok(());
        }
        self.inner.remove(name)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        self.inner.list()
    }

    fn crash_point(&self, point: CrashPoint) {
        let armed = *self.armed.lock().unwrap_or_else(|e| e.into_inner());
        if armed == Some(point) && !self.crashed() {
            let mut image = self.image.lock().unwrap_or_else(|e| e.into_inner());
            *image = Some(self.inner.image());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memdir_roundtrip_and_append() {
        let d = MemDir::new();
        d.write_atomic("a", b"one").unwrap();
        d.append("a", b"two").unwrap();
        d.append("b", b"fresh").unwrap();
        assert_eq!(d.read("a").unwrap().unwrap(), b"onetwo");
        assert_eq!(d.read("b").unwrap().unwrap(), b"fresh");
        assert_eq!(d.read("missing").unwrap(), None);
        assert_eq!(d.list().unwrap(), vec!["a".to_string(), "b".to_string()]);
        d.remove("a").unwrap();
        d.remove("a").unwrap(); // idempotent
        assert_eq!(d.read("a").unwrap(), None);
    }

    #[test]
    fn fsdir_roundtrip() {
        let root = std::env::temp_dir().join(format!("slicer-fsdir-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let d = FsDir::open(&root).unwrap();
        d.write_atomic("wal", b"abc").unwrap();
        d.append("wal", b"def").unwrap();
        assert_eq!(d.read("wal").unwrap().unwrap(), b"abcdef");
        d.write_atomic("wal", b"replaced").unwrap();
        assert_eq!(d.read("wal").unwrap().unwrap(), b"replaced");
        assert_eq!(d.list().unwrap(), vec!["wal".to_string()]);
        assert!(d.read("../escape").is_err());
        d.remove("wal").unwrap();
        assert_eq!(d.read("wal").unwrap(), None);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn crashdir_black_holes_writes_after_the_armed_point() {
        let d = CrashDir::new();
        d.write_atomic("kept", b"durable").unwrap();
        d.arm(CrashPoint::MidFold);
        d.crash_point(CrashPoint::AfterWalAppend); // not armed: no effect
        assert!(!d.crashed());
        d.crash_point(CrashPoint::MidFold);
        assert!(d.crashed());
        d.write_atomic("lost", b"never lands").unwrap();
        d.append("kept", b" more").unwrap();
        d.remove("kept").unwrap();
        let image = d.image_dir();
        assert_eq!(image.read("kept").unwrap().unwrap(), b"durable");
        assert_eq!(image.read("lost").unwrap(), None);
    }

    #[test]
    fn unarmed_crashdir_behaves_like_memdir() {
        let d = CrashDir::new();
        d.append("wal", b"rec").unwrap();
        for p in CrashPoint::ALL {
            d.crash_point(p);
        }
        assert!(!d.crashed());
        assert_eq!(d.image_dir().read("wal").unwrap().unwrap(), b"rec");
    }
}
