//! # slicer-storage
//!
//! A mini column(-group) storage engine: the workspace's substitute for
//! the commercial "DBMS-X" the paper uses in Table 7, and the end-to-end
//! validation path for the cost model.
//!
//! * [`data`] — deterministic (and rayon-parallel) TPC-H-flavored data
//!   generation, plus the FNV fingerprint primitives every scan path
//!   shares;
//! * [`compress`] — plain / dictionary / delta / LZ77-class codecs with
//!   the fixed-versus-variable-width distinction Table 7 hinges on, and
//!   the streaming per-codec cursor API ([`compress::DeltaCursor`],
//!   [`compress::DictLayout`], [`compress::lz_decompress_into`]);
//! * [`cursor`] — segments readied for blocked fingerprinting
//!   (zero-copy for fixed-width codecs, scratch-decoded for
//!   variable-width ones);
//! * [`executor`] — the vectorized [`executor::ScanExecutor`]: a shared
//!   (`&self`) scan entry point with pooled per-thread scratch, explicit
//!   cold/warm decode-cache modes, rayon-parallel decode across
//!   partitions, blocked tuple reconstruction — and predicate scans that
//!   skip chunks the pruning metadata proves empty of matches;
//! * [`prune`] — chunk-granular zone maps + bloom filters, built at
//!   encode time, persisted with the partition files, consulted by the
//!   executor to skip blocks and by the cost layer to price the skip;
//! * [`snapshot`] — the lock-free [`snapshot::SnapshotCell`] behind the
//!   engine's atomically-swappable file sets;
//! * [`engine`] — immutable [`engine::TableSnapshot`] partition files over
//!   a simulated disk, double-buffered zero-stall
//!   [`engine::StoredTable::repartition`], and [`engine::scan_naive`],
//!   the original materialize-then-iterate executor kept as the
//!   correctness oracle and benchmark baseline;
//! * [`backend`] — the pluggable durable [`backend::Dir`] namespace
//!   (filesystem, in-memory, and the crash-injecting wrapper driving the
//!   recovery property suite);
//! * [`wal`] — the length-prefixed, CRC-checksummed, sequence-numbered
//!   write-ahead log plus the manifest and partition-file images, with
//!   torn-tail recovery;
//! * [`delta`] — the row-store delta of validated
//!   [`delta::IngestBatch`]es that scans merge over the columnar base
//!   until a repartition folds it in.

#![warn(missing_docs)]

pub mod backend;
pub mod compress;
pub mod cursor;
pub mod data;
pub mod delta;
pub mod engine;
pub mod executor;
pub mod prune;
pub mod snapshot;
pub mod wal;

pub use backend::{CrashDir, CrashPoint, Dir, FsDir, MemDir, StorageError};
pub use compress::{decode, default_codec, encode, Codec, EncodedColumn};
pub use data::{generate_table, generate_table_seq, ColumnData, TableData};
pub use delta::{decode_ingest_batch, encode_ingest_batch, DeltaBatch, DeltaState, IngestBatch};
pub use engine::{
    scan_naive, scan_naive_query, scan_naive_query_snapshot, scan_naive_snapshot,
    CompressionPolicy, IngestStats, PartitionFile, RepartitionStats, ReplEvent, ReplOp, ReplTap,
    ScanResult, StoredTable, TableSnapshot,
};
pub use executor::{scan, scan_query, CacheMode, ScanExecutor};
pub use prune::{ChunkStats, ColumnPrune, CHUNK_ROWS};
pub use snapshot::SnapshotCell;
pub use wal::{crc32, RecoveryReport, TornTail, WalRecord};
