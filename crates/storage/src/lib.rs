//! # slicer-storage
//!
//! A mini column(-group) storage engine: the workspace's substitute for
//! the commercial "DBMS-X" the paper uses in Table 7, and the end-to-end
//! validation path for the cost model.
//!
//! * [`data`] — deterministic TPC-H-flavored data generation;
//! * [`compress`] — plain / dictionary / delta / LZ77-class codecs with
//!   the fixed-versus-variable-width distinction Table 7 hinges on;
//! * [`engine`] — partition files over a simulated disk
//!   ([`engine::scan`] = simulated I/O + measured decode CPU).

#![warn(missing_docs)]

pub mod compress;
pub mod data;
pub mod engine;

pub use compress::{decode, default_codec, encode, Codec, EncodedColumn};
pub use data::{generate_table, ColumnData, TableData};
pub use engine::{scan, CompressionPolicy, PartitionFile, ScanResult, StoredTable};
