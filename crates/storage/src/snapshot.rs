//! A lock-free, atomically-swappable `Arc` cell: the publication point of
//! the storage engine's double-buffered re-partitioning.
//!
//! [`SnapshotCell`] holds one `Arc<T>` (the *current* snapshot). Readers
//! [`SnapshotCell::load`] a clone of the current `Arc` without taking any
//! lock — a scan pins the snapshot it was dealt and keeps reading it even
//! while a writer publishes a replacement. Writers [`SnapshotCell::store`]
//! a new snapshot with one atomic pointer swap; the superseded snapshot is
//! freed only once every in-flight reader pin has moved past it, so
//! in-flight scans always finish on the files they started with.
//!
//! # How reclamation works (hazard slots)
//!
//! The classic unsafe gap in a DIY `ArcSwap` is the instant between a
//! reader loading the raw pointer and bumping its refcount: a writer could
//! swap and drop the last reference in between, leaving the reader
//! incrementing freed memory. The cell closes the gap with a small fixed
//! array of *hazard slots*:
//!
//! 1. the reader claims a free slot and publishes the pointer it intends
//!    to pin into it (sequentially consistent store);
//! 2. it re-reads the current pointer; if it changed, retry — the publish
//!    raced a swap and may be stale;
//! 3. if it is unchanged, the pin is safe: a writer that swaps *after*
//!    the reader's validation scans the hazard slots *after* its swap,
//!    sees the published pointer, and spins until the reader clears the
//!    slot before dropping the old snapshot.
//!
//! Readers are lock-free (a load retries only when it races an actual
//! swap, and swaps are rare — one per re-partition); writers may briefly
//! spin waiting for the handful of instructions a reader holds a hazard
//! slot for. Writers never block readers.

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

/// Number of hazard slots: the maximum number of threads that can be
/// simultaneously *inside the few-instruction pin sequence*. Pins are held
/// for nanoseconds, so this bounds momentary contention, not reader count.
const HAZARD_SLOTS: usize = 64;

/// A slot-claim sentinel distinct from null and from any real allocation.
fn claimed<T>() -> *mut T {
    std::ptr::NonNull::<T>::dangling().as_ptr()
}

/// Lock-free holder of the current `Arc<T>` snapshot. See the module docs
/// for the protocol.
pub struct SnapshotCell<T> {
    /// The current snapshot; the cell owns exactly one strong count on it.
    current: AtomicPtr<T>,
    /// Hazard slots: null = free, `claimed()` = being set up, anything
    /// else = a pointer some reader is mid-pin on.
    hazards: [AtomicPtr<T>; HAZARD_SLOTS],
}

// SAFETY: the cell hands out `Arc<T>` clones and owns one `Arc<T>`; it is
// exactly as thread-safe as `Arc<T>` itself.
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

impl<T> SnapshotCell<T> {
    /// A cell currently holding `value`.
    pub fn new(value: Arc<T>) -> SnapshotCell<T> {
        SnapshotCell {
            current: AtomicPtr::new(Arc::into_raw(value).cast_mut()),
            hazards: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
        }
    }

    /// Pin and return the current snapshot. Lock-free: never blocks on a
    /// writer; retries only when the load races an actual swap.
    pub fn load(&self) -> Arc<T> {
        let slot = self.claim_slot();
        let ptr = loop {
            let p = self.current.load(Ordering::Acquire);
            // Publish the pin, then re-validate. SeqCst on both sides
            // gives the store→load barrier the protocol needs: either the
            // writer's swap happened first (we see the new pointer and
            // retry) or our publish happened first (the writer's hazard
            // scan sees it and waits for us).
            slot.store(p, Ordering::SeqCst);
            if self.current.load(Ordering::SeqCst) == p {
                break p;
            }
        };
        // SAFETY: `ptr` came from `Arc::into_raw` (via `new` or `store`)
        // and cannot have been dropped: the validated hazard publication
        // above forces any writer retiring it to wait until the slot is
        // cleared below.
        let arc = unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        };
        slot.store(std::ptr::null_mut(), Ordering::Release);
        arc
    }

    /// Publish `value` as the new current snapshot. The superseded
    /// snapshot is dropped once no in-flight [`SnapshotCell::load`] still
    /// has it pinned in a hazard slot (writers spin for those few
    /// instructions; readers are never blocked).
    pub fn store(&self, value: Arc<T>) {
        let new = Arc::into_raw(value).cast_mut();
        // SeqCst, not AcqRel: the swap participates in the same single
        // total order as the readers' hazard publish + re-validate pair,
        // which is what guarantees that a reader whose validation saw the
        // old pointer has its hazard visible to the scan below (the
        // Dekker store→load pattern needs SC on both sides).
        let old = self.current.swap(new, Ordering::SeqCst);
        // Wait out readers that validated a pin on `old` before the swap.
        for slot in &self.hazards {
            let mut spins = 0u32;
            while slot.load(Ordering::SeqCst) == old {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        // SAFETY: `old` was the cell's owned strong count; no hazard slot
        // references it any more, and any reader that pinned it earlier
        // holds its own strong count.
        drop(unsafe { Arc::from_raw(old) });
    }

    /// Claim a free hazard slot (spinning if all are momentarily busy —
    /// slots are held for nanoseconds).
    fn claim_slot(&self) -> &AtomicPtr<T> {
        use std::hash::{Hash, Hasher};
        thread_local! {
            /// Per-thread scatter so concurrent readers probe different
            /// slots first — hashed once per thread, not per load (loads
            /// are the scan hot path).
            static SCATTER: usize = {
                let mut h = std::hash::DefaultHasher::new();
                std::thread::current().id().hash(&mut h);
                h.finish() as usize
            };
        }
        let start = SCATTER.with(|s| *s) % HAZARD_SLOTS;
        let mut spins = 0u32;
        loop {
            for i in 0..HAZARD_SLOTS {
                let slot = &self.hazards[(start + i) % HAZARD_SLOTS];
                if slot
                    .compare_exchange(
                        std::ptr::null_mut(),
                        claimed::<T>(),
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    return slot;
                }
            }
            spins += 1;
            if spins > 16 {
                std::thread::yield_now();
            }
        }
    }
}

impl<T> Drop for SnapshotCell<T> {
    fn drop(&mut self) {
        // Exclusive access: no reader can be mid-pin.
        let ptr = *self.current.get_mut();
        // SAFETY: the cell owns one strong count on `ptr`.
        drop(unsafe { Arc::from_raw(ptr) });
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SnapshotCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("current", &self.load())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_returns_latest_store() {
        let cell = SnapshotCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        // Pinned snapshots outlive the swap.
        let pinned = cell.load();
        cell.store(Arc::new(3));
        assert_eq!(*pinned, 2);
        assert_eq!(*cell.load(), 3);
    }

    #[test]
    fn drop_releases_the_current_snapshot() {
        let probe = Arc::new(77u64);
        let weak = Arc::downgrade(&probe);
        {
            let cell = SnapshotCell::new(probe);
            assert!(weak.upgrade().is_some());
            drop(cell);
        }
        assert!(weak.upgrade().is_none(), "cell must drop its strong count");
    }

    #[test]
    fn store_frees_superseded_snapshots() {
        let cell = SnapshotCell::new(Arc::new(0u64));
        let first = Arc::new(1u64);
        let weak = Arc::downgrade(&first);
        cell.store(first);
        cell.store(Arc::new(2));
        assert!(
            weak.upgrade().is_none(),
            "unpinned superseded snapshot must be freed by the swap"
        );
    }

    #[test]
    fn readers_race_writers_without_tearing() {
        // Every snapshot is (n, n * 3): a torn or freed read would break
        // the invariant. Writers swap continuously while readers pin.
        let cell = Arc::new(SnapshotCell::new(Arc::new((0u64, 0u64))));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = cell.load();
                        assert_eq!(snap.1, snap.0 * 3, "torn snapshot");
                        assert!(snap.0 >= last, "snapshots went backwards");
                        last = snap.0;
                    }
                });
            }
            for n in 1..=2000u64 {
                cell.store(Arc::new((n, n * 3)));
            }
            stop.store(true, Ordering::Relaxed);
        });
        let snap = cell.load();
        assert_eq!(*snap, (2000, 6000));
    }
}
