//! The vectorized scan executor: streaming cursors, blocked tuple
//! reconstruction, explicit decode-cache modes, parallel decode — and a
//! shared (`&self`) scan entry point so N threads scan concurrently.
//!
//! [`ScanExecutor`] replaces the engine's original materialize-then-iterate
//! scan. Per scan it:
//!
//! 1. pins the table's current [`TableSnapshot`] (or scans an explicitly
//!    pinned one via [`ScanExecutor::scan_snapshot`]) and computes the
//!    touched files and their simulated I/O exactly as the naive path does
//!    (identical `bytes_read` / `io_seconds`);
//! 2. **prepares** each touched partition — in parallel across partitions
//!    via rayon (gracefully sequential on one core) — turning every
//!    referenced segment into a [`PreparedSegment`] cursor (zero-copy for
//!    fixed-width codecs, streamed into reusable scratch for
//!    variable-width ones) and *walking* the unreferenced segments of
//!    variable-width partitions so the paper's whole-partition-decode
//!    penalty stays measured;
//! 3. **reconstructs** tuples in cache-sized row blocks: per block, each
//!    cursor fills a fingerprint lane and the row hashes are combined
//!    across lanes — the same FNV mix as the naive row-at-a-time loop,
//!    reordered but bit-identical.
//!
//! # Shared plan, per-thread scratch
//!
//! The executor itself is immutable per scan: the mutable state — decode
//! arenas, fingerprint lanes, cursor keys — lives in [`ScanScratch`]
//! units checked in and out of an internal pool. Each concurrent scan
//! owns one scratch for its duration, so the warm arenas are never
//! aliased between threads (the PR-2 executor tied them to `&mut self`,
//! which made concurrent scans unexpressible). A scratch remembers the
//! snapshot generation it was shaped against and rebuilds itself whenever
//! it is handed a scan over a different snapshot, so warm state never
//! leaks across a re-partition.
//!
//! The per-file arenas double as the decode cache. [`CacheMode::Cold`]
//! (the paper's testbed: caches dropped before every query) resets the
//! cached state at the start of each scan while keeping buffer capacity,
//! so the decode and reconstruction paths allocate nothing in steady
//! state; [`CacheMode::Warm`] keeps prepared segments across the scans
//! that reuse a scratch, modeling a warmed decode cache.
//!
//! The original executor survives as [`crate::engine::scan_naive`], the
//! oracle the property tests and `scan_bench` hold this module to.

use crate::compress::decode;
use crate::cursor::PreparedSegment;
use crate::data::{ColumnData, FNV_OFFSET, FNV_PRIME};
use crate::engine::{
    chunk_keep_mask, touched_and_io, touched_and_io_query, ScanResult, StoredTable, TableSnapshot,
};
use crate::prune::{clause_matches, CHUNK_ROWS};
use rayon::prelude::*;
use slicer_cost::DiskParams;
use slicer_model::{AttrId, AttrSet, Query};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Rows per reconstruction block: 2048 rows × 8 B/fingerprint = 16 KiB per
/// lane, two lanes live — comfortably inside L1/L2.
const BLOCK_ROWS: usize = 2048;

// Pruning verdicts are per CHUNK_ROWS-row chunk; the blocked loop skips a
// whole block on a negative verdict, which only lines up if the two
// granularities are the same.
const _: () = assert!(BLOCK_ROWS == CHUNK_ROWS);

/// Decode-cache behavior across scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Drop cached decoded state before every scan (the paper's cold-cache
    /// testbed). Buffer capacity is retained, contents are not.
    Cold,
    /// Keep prepared segments across scans: repeated projections over the
    /// same partitions skip decode entirely.
    Warm,
}

/// Cached state for one partition file: one slot per segment plus the
/// file's reusable decode scratch.
#[derive(Debug, Default)]
struct FileArena {
    /// Per-segment cache slot, aligned with `PartitionFile::segments`.
    slots: Vec<SegSlot>,
    /// LZ decompression scratch, reused across segments and scans.
    lz_scratch: Vec<u8>,
    /// Retired fingerprint buffers awaiting reuse.
    spare: Vec<Vec<u64>>,
}

#[derive(Debug, Default)]
enum SegSlot {
    /// Nothing cached.
    #[default]
    Cold,
    /// Variable-width decode walked (penalty paid), result not kept.
    Walked,
    /// Fingerprint-ready cursor.
    Ready(PreparedSegment),
}

impl FileArena {
    /// Drop cached state, harvesting buffers for reuse.
    fn reset(&mut self) {
        for slot in &mut self.slots {
            if let SegSlot::Ready(seg) = std::mem::take(slot) {
                if let Some(mut buf) = seg.into_fp_buf() {
                    buf.clear();
                    self.spare.push(buf);
                }
            }
        }
    }
}

/// One scan's worth of mutable state: decode arenas, fingerprint lanes,
/// cursor bookkeeping. Owned exclusively by one in-flight scan, then
/// returned to the executor's pool.
#[derive(Debug, Default)]
struct ScanScratch {
    /// The exact snapshot the arenas are shaped (and possibly warmed)
    /// against; a scan over any other snapshot reshapes them. Identity is
    /// by allocation: the held `Weak` keeps the allocation alive, so the
    /// pointer comparison cannot be fooled by an address reused after a
    /// free — and a bare generation number could not distinguish two
    /// *tables* both at generation 0 if a caller hands this executor a
    /// foreign snapshot.
    snapshot: Option<std::sync::Weak<TableSnapshot>>,
    files: Vec<FileArena>,
    row_hash: Vec<u64>,
    fp_lane: Vec<u64>,
    /// `(attr, file index, segment index)` of each referenced cursor,
    /// reused across scans.
    cursor_keys: Vec<(AttrId, usize, usize)>,
}

impl ScanScratch {
    /// Make the scratch fit `snapshot`, dropping warm state that belongs
    /// to any other snapshot (arena buffers are recycled).
    fn shape_for(&mut self, snapshot: &Arc<TableSnapshot>) {
        if self
            .snapshot
            .as_ref()
            .is_some_and(|held| std::ptr::eq(held.as_ptr(), Arc::as_ptr(snapshot)))
        {
            return;
        }
        // Drop stale cursors (harvesting their buffers), then reshape the
        // arenas positionally so allocations are reused across snapshots.
        for arena in &mut self.files {
            arena.reset();
        }
        self.files
            .resize_with(snapshot.files.len(), FileArena::default);
        for (arena, file) in self.files.iter_mut().zip(&snapshot.files) {
            arena
                .slots
                .resize_with(file.segments.len(), SegSlot::default);
        }
        self.row_hash.resize(BLOCK_ROWS, 0);
        self.fp_lane.resize(BLOCK_ROWS, 0);
        self.snapshot = Some(Arc::downgrade(snapshot));
    }
}

/// A reusable, shareable scan executor over one [`StoredTable`].
///
/// `scan` takes `&self`: clone the reference across worker threads and
/// scan concurrently — each scan checks a private [`ScanScratch`] out of
/// the pool, so threads never alias each other's warm arenas.
pub struct ScanExecutor<'t> {
    table: &'t StoredTable,
    mode: CacheMode,
    pool: Mutex<Vec<ScanScratch>>,
}

impl<'t> ScanExecutor<'t> {
    /// A cold-cache executor (the paper's configuration).
    pub fn new(table: &'t StoredTable) -> ScanExecutor<'t> {
        ScanExecutor::with_mode(table, CacheMode::Cold)
    }

    /// An executor with an explicit cache mode.
    pub fn with_mode(table: &'t StoredTable, mode: CacheMode) -> ScanExecutor<'t> {
        ScanExecutor {
            table,
            mode,
            pool: Mutex::new(Vec::new()),
        }
    }

    /// The executor's cache mode.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// Execute a projection scan of `referenced` attributes against the
    /// table's *current* snapshot (pinned for the scan's duration — a
    /// concurrent re-partition never stalls it), reconstructing full
    /// tuples across partitions. Checksum, `bytes_read` and `io_seconds`
    /// are bit-identical to [`crate::engine::scan_naive`] on the same
    /// snapshot; `cpu_seconds` measures this executor's actual decode +
    /// reconstruction work.
    pub fn scan(&self, referenced: AttrSet, disk: &DiskParams) -> ScanResult {
        let snapshot = self.table.snapshot();
        self.scan_snapshot(&snapshot, referenced, disk)
    }

    /// [`ScanExecutor::scan`] against an explicitly pinned snapshot —
    /// the entry point for callers that must know exactly which snapshot
    /// a scan observed (e.g. to compare it against
    /// [`crate::engine::scan_naive_snapshot`] on the same pin). The pin
    /// is taken by `Arc` so the scratch pool can key its warm state on
    /// snapshot *identity* (two distinct tables both at generation 0 must
    /// never share decode state).
    pub fn scan_snapshot(
        &self,
        snapshot: &Arc<TableSnapshot>,
        referenced: AttrSet,
        disk: &DiskParams,
    ) -> ScanResult {
        let mut scratch = self
            .pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default();
        let result = self.scan_with(&mut scratch, snapshot, referenced, disk);
        self.pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(scratch);
        result
    }

    /// The scan body, on a checked-out scratch.
    fn scan_with(
        &self,
        scratch: &mut ScanScratch,
        snapshot: &Arc<TableSnapshot>,
        referenced: AttrSet,
        disk: &DiskParams,
    ) -> ScanResult {
        let (touched, bytes_read, io_seconds) = touched_and_io(snapshot, referenced, disk);

        let start = Instant::now();
        scratch.shape_for(snapshot);
        if self.mode == CacheMode::Cold {
            for arena in &mut scratch.files {
                arena.reset();
            }
        }

        self.prepare_touched(scratch, snapshot, &touched, referenced);
        gather_cursors(scratch, snapshot, &touched, referenced);
        let cursors: &[(AttrId, usize, usize)] = &scratch.cursor_keys;

        // Blocked tuple reconstruction over the columnar base. Rows fold
        // into the checksum rotated by their *visible* position (rank
        // among non-tombstoned rows) — identical to physical position
        // when the delta is empty, and invariant under delta folding
        // otherwise, matching the naive oracle bit-for-bit.
        let rows = snapshot.source.rows;
        let delta = &snapshot.delta;
        let deleted = delta.deleted_ids();
        let merge = !delta.is_empty();
        let row_hash = &mut scratch.row_hash;
        let fp_lane = &mut scratch.fp_lane;
        let mut checksum = 0u64;
        let mut base = 0usize;
        let mut visible = 0usize;
        let mut next_del = 0usize;
        while base < rows {
            let len = BLOCK_ROWS.min(rows - base);
            row_hash[..len].fill(FNV_OFFSET);
            for &(_, fi, si) in cursors {
                let SegSlot::Ready(seg) = &scratch.files[fi].slots[si] else {
                    unreachable!("cursor keys only index Ready slots");
                };
                seg.fill_fps(base, &mut fp_lane[..len]);
                for (h, fp) in row_hash[..len].iter_mut().zip(&fp_lane[..len]) {
                    *h = (*h ^ fp).wrapping_mul(FNV_PRIME);
                }
            }
            if merge {
                for (j, h) in row_hash[..len].iter().enumerate() {
                    if next_del < deleted.len() && deleted[next_del] == (base + j) as u64 {
                        next_del += 1;
                        continue;
                    }
                    checksum ^= h.rotate_left((visible % 63) as u32);
                    visible += 1;
                }
            } else {
                for (j, h) in row_hash[..len].iter().enumerate() {
                    checksum ^= h.rotate_left(((base + j) % 63) as u32);
                }
            }
            base += len;
        }
        // Delta epilogue: the row-store side merges after the base in
        // append order, hashing the referenced attributes ascending — the
        // same order the cursor lanes combined in.
        if merge {
            for batch in delta.batches() {
                for i in 0..batch.data.rows {
                    if delta.is_deleted(batch.first_row_id + i as u64) {
                        continue;
                    }
                    let mut h = FNV_OFFSET;
                    for &(aid, _, _) in cursors {
                        h = (h ^ batch.data.columns[aid.index()].fingerprint(i))
                            .wrapping_mul(FNV_PRIME);
                    }
                    checksum ^= h.rotate_left((visible % 63) as u32);
                    visible += 1;
                }
            }
        }
        let cpu_seconds = start.elapsed().as_secs_f64();

        ScanResult {
            checksum,
            io_seconds,
            cpu_seconds,
            bytes_read,
        }
    }

    /// Execute `query` — projection plus optional conjunctive predicate —
    /// against the table's current snapshot. With no predicate this is
    /// exactly [`ScanExecutor::scan`]; with one, chunks the zone maps /
    /// bloom filters prove empty of matches are skipped before any
    /// decode, `bytes_read`/`io_seconds` follow the select-then-fetch
    /// pruning accounting, and the checksum is bit-identical to
    /// [`crate::engine::scan_naive_query`] on the same snapshot.
    pub fn scan_query(&self, query: &Query, disk: &DiskParams) -> ScanResult {
        let snapshot = self.table.snapshot();
        self.scan_query_snapshot(&snapshot, query, disk)
    }

    /// [`ScanExecutor::scan_query`] against an explicitly pinned snapshot.
    pub fn scan_query_snapshot(
        &self,
        snapshot: &Arc<TableSnapshot>,
        query: &Query,
        disk: &DiskParams,
    ) -> ScanResult {
        if query.predicate.is_none() {
            return self.scan_snapshot(snapshot, query.referenced, disk);
        }
        let mut scratch = self
            .pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default();
        let result = self.scan_query_with(&mut scratch, snapshot, query, disk);
        self.pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(scratch);
        result
    }

    /// The pruning scan body, on a checked-out scratch.
    fn scan_query_with(
        &self,
        scratch: &mut ScanScratch,
        snapshot: &Arc<TableSnapshot>,
        query: &Query,
        disk: &DiskParams,
    ) -> ScanResult {
        let predicate = query
            .predicate
            .as_ref()
            .expect("caller checked for a predicate");
        let referenced = query.referenced;
        let keep = chunk_keep_mask(snapshot, predicate);
        let (touched, bytes_read, io_seconds) =
            touched_and_io_query(snapshot, referenced, predicate.attrs(), &keep, disk);

        let start = Instant::now();
        scratch.shape_for(snapshot);
        if self.mode == CacheMode::Cold {
            for arena in &mut scratch.files {
                arena.reset();
            }
        }

        let delta = &snapshot.delta;
        let mut checksum = 0u64;
        let mut qualifying = 0usize;

        // When every chunk is pruned, the whole base — driver segments
        // included — is skipped before any decode or walk.
        if keep.iter().any(|&k| k) {
            self.prepare_touched(scratch, snapshot, &touched, referenced);
            gather_cursors(scratch, snapshot, &touched, referenced);
            let cursors: &[(AttrId, usize, usize)] = &scratch.cursor_keys;

            // Decode each driver column once: residual clauses evaluate
            // on exact values (fingerprints could collide a wrong row in).
            let mut drivers: Vec<(AttrId, ColumnData)> = Vec::new();
            for clause in &predicate.clauses {
                if drivers.iter().any(|(a, _)| *a == clause.attr) {
                    continue;
                }
                let (fi, si) = snapshot
                    .files
                    .iter()
                    .enumerate()
                    .find_map(|(fi, f)| {
                        f.segments
                            .iter()
                            .position(|(aid, _)| *aid == clause.attr)
                            .map(|si| (fi, si))
                    })
                    .expect("predicate driver must be stored");
                let col = decode(
                    &snapshot.files[fi].segments[si].1,
                    &snapshot.source.columns[clause.attr.index()],
                );
                drivers.push((clause.attr, col));
            }
            let clause_cols: Vec<usize> = predicate
                .clauses
                .iter()
                .map(|c| drivers.iter().position(|(a, _)| *a == c.attr).unwrap())
                .collect();

            let rows = snapshot.source.rows;
            let deleted = delta.deleted_ids();
            let row_hash = &mut scratch.row_hash;
            let fp_lane = &mut scratch.fp_lane;
            let mut base = 0usize;
            let mut next_del = 0usize;
            while base < rows {
                let len = BLOCK_ROWS.min(rows - base);
                if !keep[base / CHUNK_ROWS] {
                    // Skipped chunk: provably holds no qualifying row.
                    // Only the tombstone pointer needs to advance past it.
                    while next_del < deleted.len() && deleted[next_del] < (base + len) as u64 {
                        next_del += 1;
                    }
                    base += len;
                    continue;
                }
                row_hash[..len].fill(FNV_OFFSET);
                for &(_, fi, si) in cursors {
                    let SegSlot::Ready(seg) = &scratch.files[fi].slots[si] else {
                        unreachable!("cursor keys only index Ready slots");
                    };
                    seg.fill_fps(base, &mut fp_lane[..len]);
                    for (h, fp) in row_hash[..len].iter_mut().zip(&fp_lane[..len]) {
                        *h = (*h ^ fp).wrapping_mul(FNV_PRIME);
                    }
                }
                for (j, h) in row_hash[..len].iter().enumerate() {
                    let r = base + j;
                    if next_del < deleted.len() && deleted[next_del] == r as u64 {
                        next_del += 1;
                        continue;
                    }
                    let matches = predicate
                        .clauses
                        .iter()
                        .zip(&clause_cols)
                        .all(|(c, &ci)| clause_matches(c, &drivers[ci].1, r));
                    if !matches {
                        continue;
                    }
                    checksum ^= h.rotate_left((qualifying % 63) as u32);
                    qualifying += 1;
                }
                base += len;
            }
        }

        // Delta epilogue: the row store is never chunk-prunable — every
        // row is filtered by exact clause evaluation, then hashed over
        // the referenced attributes ascending, as the oracle does.
        for batch in delta.batches() {
            for i in 0..batch.data.rows {
                if delta.is_deleted(batch.first_row_id + i as u64) {
                    continue;
                }
                let matches = predicate
                    .clauses
                    .iter()
                    .all(|c| clause_matches(c, &batch.data.columns[c.attr.index()], i));
                if !matches {
                    continue;
                }
                let mut h = FNV_OFFSET;
                for aid in referenced.iter() {
                    h = (h ^ batch.data.columns[aid.index()].fingerprint(i))
                        .wrapping_mul(FNV_PRIME);
                }
                checksum ^= h.rotate_left((qualifying % 63) as u32);
                qualifying += 1;
            }
        }
        let cpu_seconds = start.elapsed().as_secs_f64();

        ScanResult {
            checksum,
            io_seconds,
            cpu_seconds,
            bytes_read,
        }
    }

    /// Decode the touched partitions — rayon-parallel when there is both
    /// more than one partition and more than one core (each task owns its
    /// file's arena for the duration, moved out and back, so scratch
    /// reuse and parallelism compose without locks); in-place and
    /// allocation-free otherwise.
    fn prepare_touched(
        &self,
        scratch: &mut ScanScratch,
        snapshot: &Arc<TableSnapshot>,
        touched: &[usize],
        referenced: AttrSet,
    ) {
        let table = self.table;
        if touched.len() > 1 && rayon::current_num_threads() > 1 {
            let tasks: Vec<(usize, FileArena)> = touched
                .iter()
                .map(|&i| (i, std::mem::take(&mut scratch.files[i])))
                .collect();
            let prepared: Vec<(usize, FileArena)> = tasks
                .into_par_iter()
                .map(|(i, mut arena)| {
                    prepare_file(table, snapshot, i, referenced, &mut arena);
                    (i, arena)
                })
                .collect();
            for (i, arena) in prepared {
                scratch.files[i] = arena;
            }
        } else {
            for &i in touched {
                prepare_file(table, snapshot, i, referenced, &mut scratch.files[i]);
            }
        }
    }
}

/// Gather the referenced cursors in ascending attribute order (the naive
/// path's reconstruction order) into `scratch.cursor_keys`, reusing the
/// key buffer.
fn gather_cursors(
    scratch: &mut ScanScratch,
    snapshot: &TableSnapshot,
    touched: &[usize],
    referenced: AttrSet,
) {
    let cursor_keys = &mut scratch.cursor_keys;
    cursor_keys.clear();
    for &fi in touched {
        for (si, (aid, _)) in snapshot.files[fi].segments.iter().enumerate() {
            if referenced.contains(*aid) && matches!(scratch.files[fi].slots[si], SegSlot::Ready(_))
            {
                cursor_keys.push((*aid, fi, si));
            }
        }
    }
    cursor_keys.sort_by_key(|(a, _, _)| *a);
}

/// Prepare one touched file: ready every referenced segment, walk the
/// unreferenced ones if the file is variable-width (rows not individually
/// addressable ⇒ the whole partition must be decoded).
fn prepare_file(
    table: &StoredTable,
    snapshot: &TableSnapshot,
    file_idx: usize,
    referenced: AttrSet,
    arena: &mut FileArena,
) {
    let file = &snapshot.files[file_idx];
    let need_all = !file.fixed_width();
    let FileArena {
        slots,
        lz_scratch,
        spare,
    } = arena;
    for (si, (aid, enc)) in file.segments.iter().enumerate() {
        let slot = &mut slots[si];
        if referenced.contains(*aid) {
            if !matches!(slot, SegSlot::Ready(_)) {
                let kind = table.schema.attribute(*aid).kind;
                // Plain segments are zero-copy and never use the buffer.
                let fp_buf = if enc.codec == crate::compress::Codec::Plain {
                    Vec::new()
                } else {
                    spare.pop().unwrap_or_default()
                };
                *slot = SegSlot::Ready(PreparedSegment::prepare(enc, kind, fp_buf, lz_scratch));
            }
        } else if need_all && matches!(slot, SegSlot::Cold) {
            PreparedSegment::walk(enc);
            *slot = SegSlot::Walked;
        }
    }
}

/// Convenience: one cold-cache scan through a fresh [`ScanExecutor`] —
/// the drop-in replacement for the old `scan` free function.
pub fn scan(table: &StoredTable, referenced: AttrSet, disk: &DiskParams) -> ScanResult {
    ScanExecutor::new(table).scan(referenced, disk)
}

/// Convenience: one cold-cache *query* scan (projection + optional
/// predicate) through a fresh [`ScanExecutor`].
pub fn scan_query(table: &StoredTable, query: &Query, disk: &DiskParams) -> ScanResult {
    ScanExecutor::new(table).scan_query(query, disk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::generate_table;
    use crate::engine::{scan_naive, CompressionPolicy};
    use slicer_model::{AttrKind, Partitioning, TableSchema};

    fn schema() -> TableSchema {
        TableSchema::builder("Orders", 1500)
            .attr("OrdersKey", 4, AttrKind::Int)
            .attr("CustKey", 4, AttrKind::Int)
            .attr("TotalPrice", 8, AttrKind::Decimal)
            .attr("OrderDate", 4, AttrKind::Date)
            .attr("ShipMode", 10, AttrKind::Text)
            .attr("Comment", 60, AttrKind::Text)
            .build()
            .unwrap()
    }

    fn layouts(s: &TableSchema) -> Vec<Partitioning> {
        vec![
            Partitioning::row(s),
            Partitioning::column(s),
            Partitioning::new(
                s,
                vec![
                    s.attr_set(&["OrdersKey", "Comment"]).unwrap(),
                    s.attr_set(&["CustKey", "TotalPrice", "OrderDate", "ShipMode"])
                        .unwrap(),
                ],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn executor_matches_naive_everywhere() {
        let s = schema();
        let data = generate_table(&s, 1500, 11);
        let disk = DiskParams::paper_testbed();
        let projections = [
            AttrSet::default(),
            s.attr_set(&["OrdersKey"]).unwrap(),
            s.attr_set(&["CustKey", "Comment"]).unwrap(),
            s.all_attrs(),
        ];
        for policy in [
            CompressionPolicy::None,
            CompressionPolicy::Default,
            CompressionPolicy::Dictionary,
        ] {
            for layout in layouts(&s) {
                let t = StoredTable::load(&s, &data, &layout, policy);
                let exec = ScanExecutor::new(&t);
                for &p in &projections {
                    let naive = scan_naive(&t, p, &disk);
                    let fast = exec.scan(p, &disk);
                    assert_eq!(naive.checksum, fast.checksum, "{policy:?} {layout:?}");
                    assert_eq!(naive.bytes_read, fast.bytes_read);
                    assert_eq!(naive.io_seconds, fast.io_seconds);
                }
            }
        }
    }

    #[test]
    fn warm_mode_returns_identical_results_across_repeats() {
        let s = schema();
        let data = generate_table(&s, 1500, 3);
        let disk = DiskParams::paper_testbed();
        let t = StoredTable::load(
            &s,
            &data,
            &Partitioning::row(&s),
            CompressionPolicy::Default,
        );
        let p = s.attr_set(&["CustKey", "ShipMode"]).unwrap();
        let oracle = scan_naive(&t, p, &disk);
        let warm = ScanExecutor::with_mode(&t, CacheMode::Warm);
        for _ in 0..3 {
            let r = warm.scan(p, &disk);
            assert_eq!(r.checksum, oracle.checksum);
            assert_eq!(r.bytes_read, oracle.bytes_read);
        }
        // Widening the projection after warming must still be correct.
        let wide = s.attr_set(&["CustKey", "ShipMode", "Comment"]).unwrap();
        assert_eq!(
            warm.scan(wide, &disk).checksum,
            scan_naive(&t, wide, &disk).checksum
        );
    }

    #[test]
    fn cold_mode_reuses_capacity_but_not_contents() {
        let s = schema();
        let data = generate_table(&s, 1500, 5);
        let disk = DiskParams::paper_testbed();
        let t = StoredTable::load(
            &s,
            &data,
            &Partitioning::column(&s),
            CompressionPolicy::Default,
        );
        let p = s.attr_set(&["Comment"]).unwrap();
        let exec = ScanExecutor::new(&t);
        let a = exec.scan(p, &disk);
        let b = exec.scan(p, &disk);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.bytes_read, b.bytes_read);
    }

    #[test]
    fn warm_scratch_invalidates_across_repartitions() {
        // A warm executor must not serve decode state that belongs to a
        // superseded snapshot — and a scan over a *pinned* old snapshot
        // after the table moved on must still be exact.
        let s = schema();
        let data = generate_table(&s, 1500, 9);
        let disk = DiskParams::paper_testbed();
        let t = StoredTable::load(
            &s,
            &data,
            &Partitioning::row(&s),
            CompressionPolicy::Default,
        );
        let p = s.attr_set(&["CustKey", "Comment"]).unwrap();
        let warm = ScanExecutor::with_mode(&t, CacheMode::Warm);
        let old_snap = t.snapshot();
        let before = warm.scan(p, &disk);
        t.repartition(&Partitioning::column(&s), &disk);
        // Live scan: new snapshot, fresh decode state, fewer bytes.
        let live = warm.scan(p, &disk);
        assert_eq!(live.checksum, before.checksum);
        assert!(live.bytes_read < before.bytes_read);
        // Pinned scan: the superseded snapshot still reads exactly.
        let pinned = warm.scan_snapshot(&old_snap, p, &disk);
        assert_eq!(pinned.checksum, before.checksum);
        assert_eq!(pinned.bytes_read, before.bytes_read);
    }

    #[test]
    fn warm_scratch_never_leaks_across_tables_at_equal_generations() {
        // Two distinct tables, both at generation 0, same schema and file
        // shape but different data: a warm executor for table A that is
        // handed table B's snapshot must rebuild its decode state, not
        // serve A's cached fingerprints as B's answer.
        let s = schema();
        let data_a = generate_table(&s, 1500, 21);
        let data_b = generate_table(&s, 1500, 22);
        let disk = DiskParams::paper_testbed();
        let layout = Partitioning::row(&s);
        let a = StoredTable::load(&s, &data_a, &layout, CompressionPolicy::Default);
        let b = StoredTable::load(&s, &data_b, &layout, CompressionPolicy::Default);
        let p = s.attr_set(&["CustKey", "Comment"]).unwrap();
        let warm = ScanExecutor::with_mode(&a, CacheMode::Warm);
        let from_a = warm.scan(p, &disk);
        let snap_b = b.snapshot();
        assert_eq!(snap_b.generation, a.snapshot().generation);
        let from_b = warm.scan_snapshot(&snap_b, p, &disk);
        assert_eq!(from_b.checksum, scan_naive(&b, p, &disk).checksum);
        assert_ne!(from_b.checksum, from_a.checksum, "different data");
    }

    #[test]
    fn predicate_scans_match_oracle_and_read_fewer_bytes() {
        use crate::engine::scan_naive_query;
        use slicer_model::{Literal, PredClause, PredOp, Predicate, Query};
        let s = schema();
        let data = generate_table(&s, 1500, 11);
        let disk = DiskParams::paper_testbed();
        let referenced = s.attr_set(&["CustKey", "OrderDate", "ShipMode"]).unwrap();
        let date = s.attr_id("OrderDate").unwrap();
        let cust = s.attr_id("CustKey").unwrap();
        let ship = s.attr_id("ShipMode").unwrap();
        let queries =
            [
                // Range on the clustered date column: most chunks prune.
                Query::new("range", referenced).with_predicate(Predicate::new(vec![
                    PredClause::new(date, PredOp::Le, Literal::date(40)),
                ])),
                // Equality on a text driver (dictionary-friendly, bloom path).
                Query::new("text", referenced).with_predicate(Predicate::new(vec![
                    PredClause::new(ship, PredOp::Eq, Literal::text("AIR")),
                ])),
                // Conjunction mixing int range with text equality.
                Query::new("both", referenced).with_predicate(Predicate::new(vec![
                    PredClause::new(cust, PredOp::Ge, Literal::int(10)),
                    PredClause::new(ship, PredOp::Eq, Literal::text("RAIL")),
                ])),
                // Impossible range: every chunk pruned, nothing decoded.
                Query::new("empty", referenced).with_predicate(Predicate::new(vec![
                    PredClause::new(date, PredOp::Le, Literal::date(-1)),
                ])),
            ];
        let mut any_pruned = false;
        for policy in [CompressionPolicy::None, CompressionPolicy::Default] {
            for layout in layouts(&s) {
                let t = StoredTable::load(&s, &data, &layout, policy);
                let exec = ScanExecutor::with_mode(&t, CacheMode::Warm);
                for q in &queries {
                    let oracle = scan_naive_query(&t, q, &disk);
                    // Warm repeats must be as exact as the cold first scan.
                    for _ in 0..2 {
                        let fast = exec.scan_query(q, &disk);
                        assert_eq!(
                            fast.checksum, oracle.checksum,
                            "{policy:?} {layout:?} {}",
                            q.name
                        );
                        assert!(fast.bytes_read <= oracle.bytes_read);
                        if fast.bytes_read < oracle.bytes_read {
                            any_pruned = true;
                        }
                    }
                }
            }
        }
        assert!(any_pruned, "no layout ever skipped a byte");
    }

    #[test]
    fn predicate_scans_filter_the_delta_too() {
        use crate::delta::IngestBatch;
        use crate::engine::scan_naive_query;
        use slicer_model::{Literal, PredClause, PredOp, Predicate, Query};
        let s = schema();
        let data = generate_table(&s, 1500, 17);
        let disk = DiskParams::paper_testbed();
        let t = StoredTable::load(
            &s,
            &data,
            &Partitioning::column(&s),
            CompressionPolicy::Default,
        );
        let extra = generate_table(&s, 300, 18);
        t.ingest(&IngestBatch::append(extra), &disk).unwrap();
        t.ingest(&IngestBatch::delete(vec![2, 40, 1501]), &disk)
            .unwrap();
        let referenced = s.attr_set(&["OrdersKey", "OrderDate"]).unwrap();
        let date = s.attr_id("OrderDate").unwrap();
        let q = Query::new("q", referenced).with_predicate(Predicate::new(vec![PredClause::new(
            date,
            PredOp::Ge,
            Literal::date(2400),
        )]));
        let exec = ScanExecutor::new(&t);
        let oracle = scan_naive_query(&t, &q, &disk);
        let fast = exec.scan_query(&q, &disk);
        assert_eq!(fast.checksum, oracle.checksum);
        assert!(fast.bytes_read <= oracle.bytes_read);
        // And the predicate-free path through scan_query stays the plain scan.
        let bare = Query::new("bare", referenced);
        assert_eq!(
            exec.scan_query(&bare, &disk).checksum,
            scan_naive(&t, referenced, &disk).checksum
        );
    }

    #[test]
    fn concurrent_scans_share_one_executor() {
        let s = schema();
        let data = generate_table(&s, 1500, 13);
        let disk = DiskParams::paper_testbed();
        let t = StoredTable::load(
            &s,
            &data,
            &Partitioning::column(&s),
            CompressionPolicy::Default,
        );
        let exec = ScanExecutor::with_mode(&t, CacheMode::Warm);
        let projections: Vec<AttrSet> = vec![
            s.attr_set(&["OrdersKey"]).unwrap(),
            s.attr_set(&["CustKey", "Comment"]).unwrap(),
            s.all_attrs(),
        ];
        let oracles: Vec<ScanResult> = projections
            .iter()
            .map(|&p| scan_naive(&t, p, &disk))
            .collect();
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let exec = &exec;
                let projections = &projections;
                let oracles = &oracles;
                let disk = &disk;
                scope.spawn(move || {
                    for i in 0..32 {
                        let k = (worker + i) % projections.len();
                        let r = exec.scan(projections[k], disk);
                        assert_eq!(r.checksum, oracles[k].checksum);
                        assert_eq!(r.bytes_read, oracles[k].bytes_read);
                    }
                });
            }
        });
    }
}
