//! On-disk formats: the write-ahead log, the manifest, and the partition
//! file image — everything a [`crate::backend::Dir`] holds.
//!
//! # WAL record format
//!
//! ```text
//! ┌─────────┬─────────┬─────────┬────────┬─────────────┐
//! │ len u32 │ crc u32 │ seq u64 │ kind u8│ payload …   │
//! └─────────┴─────────┴─────────┴────────┴─────────────┘
//!              └──────── crc32 covers ────────────────┘
//! ```
//!
//! `len` counts everything after the crc field (9 + payload bytes); `seq`
//! is a per-table monotone sequence number with no gaps. Recovery walks
//! records until the first one that fails *any* check — truncated header
//! or body, bad CRC, sequence gap, unknown kind, malformed payload — and
//! drops that suffix as the torn tail, reporting (never panicking over)
//! what it discarded in a [`TornTail`]. An `append` interrupted by a
//! crash leaves exactly such a suffix, so an unacknowledged batch can
//! never half-apply.
//!
//! # Manifest
//!
//! The manifest is the atom of snapshot publication: one CRC-guarded
//! file, replaced via [`crate::backend::Dir::write_atomic`], naming the
//! current generation, its partition files, and the active WAL file (plus
//! the sequence number its first record must carry). A repartition writes
//! the new partition files and the new (empty-but-for-its-`Publish`
//! record) WAL *first*, then swings the manifest: a crash on either side
//! of the swing recovers to a consistent generation — old until the
//! manifest lands, new after — and the stale files it may leave behind
//! are deleted on the next [`crate::engine::StoredTable::open`].

use crate::backend::StorageError;
use crate::compress::{Codec, EncodedColumn};
use crate::data::TableData;
use crate::delta::{decode_table_data, encode_table_data, take_bytes, take_u32, take_u64};
use crate::engine::{CompressionPolicy, PartitionFile};
use crate::prune::{ChunkStats, ColumnPrune};
use bytes::Bytes;
use slicer_model::{AttrId, AttrSet};
use std::fmt;

/// The manifest's fixed file name.
pub(crate) const MANIFEST: &str = "MANIFEST";

/// WAL file name for a generation.
pub(crate) fn wal_name(generation: u64) -> String {
    format!("wal-{generation}.log")
}

/// Partition file name for partition `idx` of a generation.
pub(crate) fn part_name(generation: u64, idx: usize) -> String {
    format!("part-{generation}-{idx}.seg")
}

// --- CRC-32 (IEEE) ----------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE 802.3 polynomial), the checksum guarding every WAL
/// record, manifest, and partition file.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// --- WAL records ------------------------------------------------------

const KIND_PUBLISH: u8 = 1;
const KIND_INGEST: u8 = 2;

/// One WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// First record of every WAL file: names the snapshot generation the
    /// following records apply to (cross-checked against the manifest).
    Publish {
        /// The generation this WAL file belongs to.
        generation: u64,
    },
    /// One atomic ingest batch: appended rows and/or tombstoned row ids.
    Ingest {
        /// Appended rows (normalized), if any.
        appends: Option<TableData>,
        /// Deleted row ids, sorted.
        deletes: Vec<u64>,
    },
}

/// Serialize one record (header + payload) for appending to the WAL.
pub(crate) fn encode_record(seq: u64, record: &WalRecord) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    body.extend_from_slice(&seq.to_le_bytes());
    match record {
        WalRecord::Publish { generation } => {
            body.push(KIND_PUBLISH);
            body.extend_from_slice(&generation.to_le_bytes());
        }
        WalRecord::Ingest { appends, deletes } => {
            body.push(KIND_INGEST);
            match appends {
                Some(data) => {
                    body.push(1);
                    encode_table_data(data, &mut body);
                }
                None => body.push(0),
            }
            body.extend_from_slice(&(deletes.len() as u64).to_le_bytes());
            for rid in deletes {
                body.extend_from_slice(&rid.to_le_bytes());
            }
        }
    }
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// What recovery discarded from the end of a WAL file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Bytes of intact records kept.
    pub valid_bytes: usize,
    /// Bytes dropped from the tail.
    pub discarded_bytes: usize,
    /// Why the first dropped byte failed validation.
    pub reason: String,
}

/// Decode every intact record of a WAL image. Walks records from the
/// front, verifying length, CRC, and the gap-free sequence starting at
/// `first_seq`; stops at the first violation and reports the dropped
/// suffix as a [`TornTail`]. Returns the records, the next expected
/// sequence number, and the torn tail (if any). Never panics on
/// arbitrary input.
pub(crate) fn decode_wal(bytes: &[u8], first_seq: u64) -> (Vec<WalRecord>, u64, Option<TornTail>) {
    let mut records = Vec::new();
    let mut expect = first_seq;
    let mut off = 0usize;
    let torn = loop {
        if off == bytes.len() {
            break None;
        }
        let tear = |reason: String| TornTail {
            valid_bytes: off,
            discarded_bytes: bytes.len() - off,
            reason,
        };
        if bytes.len() - off < 8 {
            break Some(tear("truncated record header".into()));
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
        if len < 9 {
            break Some(tear(format!("implausible record length {len}")));
        }
        if bytes.len() - off - 8 < len {
            break Some(tear(format!(
                "truncated record body ({} of {len} bytes)",
                bytes.len() - off - 8
            )));
        }
        let body = &bytes[off + 8..off + 8 + len];
        if crc32(body) != crc {
            break Some(tear("record checksum mismatch".into()));
        }
        let seq = u64::from_le_bytes(body[..8].try_into().unwrap());
        if seq != expect {
            break Some(tear(format!("sequence gap: wanted {expect}, found {seq}")));
        }
        match decode_record_body(&body[8..]) {
            Ok(record) => records.push(record),
            Err(e) => break Some(tear(format!("malformed record payload: {e}"))),
        }
        expect += 1;
        off += 8 + len;
    };
    (records, expect, torn)
}

fn decode_record_body(body: &[u8]) -> Result<WalRecord, StorageError> {
    let mut buf = body;
    let kind = take_bytes(&mut buf, 1)?[0];
    let record = match kind {
        KIND_PUBLISH => WalRecord::Publish {
            generation: take_u64(&mut buf)?,
        },
        KIND_INGEST => {
            let has_appends = take_bytes(&mut buf, 1)?[0];
            let appends = match has_appends {
                0 => None,
                1 => Some(decode_table_data(&mut buf)?),
                other => {
                    return Err(StorageError::Corrupt(format!("bad appends flag {other}")));
                }
            };
            let n = take_u64(&mut buf)? as usize;
            if n > buf.len() / 8 {
                return Err(StorageError::Corrupt(format!(
                    "implausible delete count {n}"
                )));
            }
            let mut deletes = Vec::with_capacity(n);
            for _ in 0..n {
                deletes.push(take_u64(&mut buf)?);
            }
            WalRecord::Ingest { appends, deletes }
        }
        other => {
            return Err(StorageError::Corrupt(format!(
                "unknown record kind {other}"
            )));
        }
    };
    if !buf.is_empty() {
        return Err(StorageError::Corrupt(format!(
            "{} trailing bytes in record",
            buf.len()
        )));
    }
    Ok(record)
}

/// What [`crate::engine::StoredTable::open`] found and did: the replay
/// outcome the caller is expected to log, torn tail included.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// The generation the manifest published.
    pub generation: u64,
    /// Ingest records replayed from the WAL.
    pub wal_records: u64,
    /// Rows re-appended into the delta by replay.
    pub rows_appended: u64,
    /// Tombstones re-applied by replay.
    pub rows_deleted: u64,
    /// Stale files (superseded WALs, unreferenced partition files) swept.
    pub orphans_removed: usize,
    /// The WAL suffix recovery discarded, if the tail was torn.
    pub torn: Option<TornTail>,
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recovered generation {} (+{} rows, -{} rows from {} WAL records, {} orphans swept",
            self.generation,
            self.rows_appended,
            self.rows_deleted,
            self.wal_records,
            self.orphans_removed
        )?;
        match &self.torn {
            Some(t) => write!(
                f,
                "; torn tail: dropped {} bytes after {} valid — {})",
                t.discarded_bytes, t.valid_bytes, t.reason
            ),
            None => write!(f, "; tail clean)"),
        }
    }
}

// --- manifest ---------------------------------------------------------

const MANIFEST_MAGIC: &[u8; 4] = b"SLCM";
const PART_MAGIC: &[u8; 4] = b"SLCP";
// Version 2 appends per-segment pruning metadata (zone maps + bloom
// filters) to the partition-file image, so recovery reopens a table with
// its block-skipping stats intact instead of rebuilding or losing them.
const FORMAT_VERSION: u32 = 2;

/// The decoded manifest: the durable root from which a table reopens.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Manifest {
    /// Published generation.
    pub generation: u64,
    /// Compression policy the partition files are encoded under.
    pub policy: CompressionPolicy,
    /// The active WAL file.
    pub wal_file: String,
    /// Sequence number of the WAL file's first (`Publish`) record.
    pub first_seq: u64,
    /// Partition file names, in layout order.
    pub files: Vec<String>,
}

fn policy_tag(policy: CompressionPolicy) -> u8 {
    match policy {
        CompressionPolicy::Default => 0,
        CompressionPolicy::Dictionary => 1,
        CompressionPolicy::None => 2,
    }
}

fn policy_from_tag(tag: u8) -> Result<CompressionPolicy, StorageError> {
    match tag {
        0 => Ok(CompressionPolicy::Default),
        1 => Ok(CompressionPolicy::Dictionary),
        2 => Ok(CompressionPolicy::None),
        other => Err(StorageError::Corrupt(format!("unknown policy tag {other}"))),
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn take_str(buf: &mut &[u8]) -> Result<String, StorageError> {
    let len = take_u32(buf)? as usize;
    let bytes = take_bytes(buf, len)?;
    std::str::from_utf8(bytes)
        .map(str::to_string)
        .map_err(|_| StorageError::Corrupt("non-UTF-8 file name".into()))
}

fn frame(magic: &[u8; 4], payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(magic);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn unframe<'a>(magic: &[u8; 4], bytes: &'a [u8], what: &str) -> Result<&'a [u8], StorageError> {
    let mut buf = bytes;
    let found = take_bytes(&mut buf, 4)?;
    if found != magic {
        return Err(StorageError::Corrupt(format!("{what}: bad magic")));
    }
    let version = take_u32(&mut buf)?;
    if version != FORMAT_VERSION {
        return Err(StorageError::Corrupt(format!(
            "{what}: unsupported version {version}"
        )));
    }
    let crc = take_u32(&mut buf)?;
    if crc32(buf) != crc {
        return Err(StorageError::Corrupt(format!("{what}: checksum mismatch")));
    }
    Ok(buf)
}

pub(crate) fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    payload.extend_from_slice(&m.generation.to_le_bytes());
    payload.push(policy_tag(m.policy));
    put_str(&mut payload, &m.wal_file);
    payload.extend_from_slice(&m.first_seq.to_le_bytes());
    payload.extend_from_slice(&(m.files.len() as u32).to_le_bytes());
    for f in &m.files {
        put_str(&mut payload, f);
    }
    frame(MANIFEST_MAGIC, payload)
}

pub(crate) fn decode_manifest(bytes: &[u8]) -> Result<Manifest, StorageError> {
    let mut buf = unframe(MANIFEST_MAGIC, bytes, "manifest")?;
    let generation = take_u64(&mut buf)?;
    let policy = policy_from_tag(take_bytes(&mut buf, 1)?[0])?;
    let wal_file = take_str(&mut buf)?;
    let first_seq = take_u64(&mut buf)?;
    let n = take_u32(&mut buf)? as usize;
    if n > u16::MAX as usize {
        return Err(StorageError::Corrupt(format!(
            "manifest: implausible file count {n}"
        )));
    }
    let mut files = Vec::with_capacity(n);
    for _ in 0..n {
        files.push(take_str(&mut buf)?);
    }
    if !buf.is_empty() {
        return Err(StorageError::Corrupt("manifest: trailing bytes".into()));
    }
    Ok(Manifest {
        generation,
        policy,
        wal_file,
        first_seq,
        files,
    })
}

// --- partition file image ---------------------------------------------

fn codec_tag(codec: Codec) -> u8 {
    match codec {
        Codec::Plain => 0,
        Codec::Dictionary => 1,
        Codec::Delta => 2,
        Codec::Lz => 3,
    }
}

fn codec_from_tag(tag: u8) -> Result<Codec, StorageError> {
    match tag {
        0 => Ok(Codec::Plain),
        1 => Ok(Codec::Dictionary),
        2 => Ok(Codec::Delta),
        3 => Ok(Codec::Lz),
        other => Err(StorageError::Corrupt(format!("unknown codec tag {other}"))),
    }
}

pub(crate) fn encode_partition_file(file: &PartitionFile) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    payload.extend_from_slice(&(file.rows as u64).to_le_bytes());
    payload.extend_from_slice(&(file.segments.len() as u32).to_le_bytes());
    for (aid, seg) in &file.segments {
        payload.extend_from_slice(&(aid.index() as u32).to_le_bytes());
        payload.push(codec_tag(seg.codec));
        payload.extend_from_slice(&(seg.rows as u64).to_le_bytes());
        payload.extend_from_slice(&(seg.dict_entries as u64).to_le_bytes());
        payload.extend_from_slice(&(seg.raw_width as u64).to_le_bytes());
        payload.extend_from_slice(&(seg.bytes.len() as u64).to_le_bytes());
        payload.extend_from_slice(&seg.bytes);
        payload.extend_from_slice(&(seg.dict_bytes.len() as u64).to_le_bytes());
        payload.extend_from_slice(&seg.dict_bytes);
    }
    // Pruning metadata, one run of chunk stats per segment, in segment
    // order: fixed-width records (min, max, 4 bloom words) so the decoder
    // never has to trust a length it cannot bound.
    for prune in &file.prune {
        payload.extend_from_slice(&(prune.chunks.len() as u64).to_le_bytes());
        for c in &prune.chunks {
            payload.extend_from_slice(&c.min_key.to_le_bytes());
            payload.extend_from_slice(&c.max_key.to_le_bytes());
            for w in c.bloom {
                payload.extend_from_slice(&w.to_le_bytes());
            }
        }
    }
    frame(PART_MAGIC, payload)
}

pub(crate) fn decode_partition_file(bytes: &[u8]) -> Result<PartitionFile, StorageError> {
    let mut buf = unframe(PART_MAGIC, bytes, "partition file")?;
    let rows = take_u64(&mut buf)? as usize;
    let n = take_u32(&mut buf)? as usize;
    if n > u16::MAX as usize {
        return Err(StorageError::Corrupt(format!(
            "partition file: implausible segment count {n}"
        )));
    }
    let mut segments = Vec::with_capacity(n);
    let mut attrs = AttrSet::default();
    for _ in 0..n {
        let aid = AttrId(take_u32(&mut buf)? as u16);
        let codec = codec_from_tag(take_bytes(&mut buf, 1)?[0])?;
        let seg_rows = take_u64(&mut buf)? as usize;
        let dict_entries = take_u64(&mut buf)? as usize;
        let raw_width = take_u64(&mut buf)? as usize;
        let blen = take_u64(&mut buf)? as usize;
        let data = Bytes::from(take_bytes(&mut buf, blen)?.to_vec());
        let dlen = take_u64(&mut buf)? as usize;
        let dict = Bytes::from(take_bytes(&mut buf, dlen)?.to_vec());
        attrs.insert(aid);
        segments.push((
            aid,
            EncodedColumn {
                codec,
                bytes: data,
                dict_bytes: dict,
                rows: seg_rows,
                dict_entries,
                raw_width,
            },
        ));
    }
    let mut prune = Vec::with_capacity(n);
    for si in 0..n {
        let count = take_u64(&mut buf)? as usize;
        if count > buf.len() / (16 + 32) {
            return Err(StorageError::Corrupt(format!(
                "partition file: implausible chunk count {count} for segment {si}"
            )));
        }
        let mut chunks = Vec::with_capacity(count);
        for _ in 0..count {
            let min_key = take_u64(&mut buf)? as i64;
            let max_key = take_u64(&mut buf)? as i64;
            let mut bloom = [0u64; 4];
            for w in &mut bloom {
                *w = take_u64(&mut buf)?;
            }
            chunks.push(ChunkStats {
                min_key,
                max_key,
                bloom,
            });
        }
        prune.push(ColumnPrune { chunks });
    }
    if !buf.is_empty() {
        return Err(StorageError::Corrupt(
            "partition file: trailing bytes".into(),
        ));
    }
    Ok(PartitionFile {
        attrs,
        segments,
        rows,
        prune,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::encode;
    use crate::data::ColumnData;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Publish { generation: 3 },
            WalRecord::Ingest {
                appends: Some(TableData {
                    columns: vec![
                        ColumnData::Int(vec![7, 8]),
                        ColumnData::Text(vec!["a".into(), "bc".into()]),
                    ],
                    rows: 2,
                }),
                deletes: vec![],
            },
            WalRecord::Ingest {
                appends: None,
                deletes: vec![0, 5],
            },
            WalRecord::Ingest {
                appends: Some(TableData {
                    columns: vec![ColumnData::Decimal(vec![1]), ColumnData::Date(vec![30])],
                    rows: 1,
                }),
                deletes: vec![2],
            },
        ]
    }

    fn encode_all(records: &[WalRecord], first_seq: u64) -> Vec<u8> {
        let mut out = Vec::new();
        for (i, r) in records.iter().enumerate() {
            out.extend_from_slice(&encode_record(first_seq + i as u64, r));
        }
        out
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_record_type_roundtrips() {
        let records = sample_records();
        let stream = encode_all(&records, 10);
        let (decoded, next_seq, torn) = decode_wal(&stream, 10);
        assert_eq!(decoded, records);
        assert_eq!(next_seq, 14);
        assert_eq!(torn, None);
    }

    #[test]
    fn every_bit_flip_is_rejected_without_panicking() {
        let records = sample_records();
        let stream = encode_all(&records, 0);
        // Record boundaries, to know how many records precede each byte.
        let mut boundaries = vec![0usize];
        for (i, r) in records.iter().enumerate() {
            boundaries.push(boundaries[i] + encode_record(i as u64, r).len());
        }
        for pos in 0..stream.len() {
            for bit in [0x01u8, 0x80u8] {
                let mut corrupt = stream.clone();
                corrupt[pos] ^= bit;
                let (decoded, _, torn) = decode_wal(&corrupt, 0);
                // Everything before the corrupted record must survive;
                // the corrupted record and its suffix must be dropped.
                let intact = boundaries.iter().filter(|&&b| b <= pos).count() - 1;
                assert!(
                    decoded.len() <= intact,
                    "flip at {pos} kept a corrupted record"
                );
                assert_eq!(&decoded[..], &records[..decoded.len()]);
                let torn = torn.expect("corruption must be reported");
                assert_eq!(torn.valid_bytes + torn.discarded_bytes, stream.len());
                assert!(!torn.reason.is_empty());
            }
        }
    }

    #[test]
    fn truncation_at_every_byte_keeps_exactly_the_intact_prefix() {
        let records = sample_records();
        let stream = encode_all(&records, 0);
        let mut boundaries = vec![0usize];
        for (i, r) in records.iter().enumerate() {
            boundaries.push(boundaries[i] + encode_record(i as u64, r).len());
        }
        for cut in 0..stream.len() {
            let (decoded, next_seq, torn) = decode_wal(&stream[..cut], 0);
            let intact = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(decoded.len(), intact, "cut at {cut}");
            assert_eq!(&decoded[..], &records[..intact]);
            assert_eq!(next_seq, intact as u64);
            if cut == boundaries[intact] {
                assert_eq!(torn, None, "clean cut at {cut} is not torn");
            } else {
                let torn = torn.expect("mid-record cut must be reported");
                assert_eq!(torn.valid_bytes, boundaries[intact]);
                assert_eq!(torn.discarded_bytes, cut - boundaries[intact]);
            }
        }
    }

    #[test]
    fn sequence_gaps_are_rejected() {
        let mut stream = encode_record(0, &WalRecord::Publish { generation: 0 });
        stream.extend_from_slice(&encode_record(
            2, // gap: 1 skipped
            &WalRecord::Ingest {
                appends: None,
                deletes: vec![4],
            },
        ));
        let (decoded, next_seq, torn) = decode_wal(&stream, 0);
        assert_eq!(decoded.len(), 1);
        assert_eq!(next_seq, 1);
        assert!(torn.unwrap().reason.contains("sequence gap"));
        // A stream starting at the wrong seq drops everything.
        let (none, _, torn) = decode_wal(&stream, 5);
        assert!(none.is_empty());
        assert!(torn.unwrap().reason.contains("sequence gap"));
    }

    #[test]
    fn manifest_roundtrips_and_rejects_corruption() {
        let m = Manifest {
            generation: 7,
            policy: CompressionPolicy::Dictionary,
            wal_file: wal_name(7),
            first_seq: 42,
            files: vec![part_name(7, 0), part_name(3, 1)],
        };
        let bytes = encode_manifest(&m);
        assert_eq!(decode_manifest(&bytes).unwrap(), m);
        for pos in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x40;
            assert!(decode_manifest(&corrupt).is_err(), "flip at {pos} accepted");
        }
        assert!(decode_manifest(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn partition_file_roundtrips() {
        let col = ColumnData::Text(vec!["alpha".into(), "beta".into(), "alpha".into()]);
        let ints = ColumnData::Int(vec![1, 2, 3]);
        let file = PartitionFile {
            attrs: [AttrId(0), AttrId(2)].into_iter().collect(),
            segments: vec![
                (AttrId(0), encode(&ints, Codec::Delta)),
                (AttrId(2), encode(&col, Codec::Dictionary)),
            ],
            rows: 3,
            prune: vec![ColumnPrune::build(&ints), ColumnPrune::build(&col)],
        };
        let bytes = encode_partition_file(&file);
        let back = decode_partition_file(&bytes).unwrap();
        assert_eq!(back.attrs, file.attrs);
        assert_eq!(back.rows, file.rows);
        assert_eq!(back.segments.len(), 2);
        assert_eq!(back.prune, file.prune, "pruning metadata must persist");
        for ((a1, s1), (a2, s2)) in file.segments.iter().zip(&back.segments) {
            assert_eq!(a1, a2);
            assert_eq!(s1.codec, s2.codec);
            assert_eq!(s1.bytes.as_ref(), s2.bytes.as_ref());
            assert_eq!(s1.dict_bytes.as_ref(), s2.dict_bytes.as_ref());
            assert_eq!(s1.rows, s2.rows);
            assert_eq!(s1.dict_entries, s2.dict_entries);
            assert_eq!(s1.raw_width, s2.raw_width);
        }
        let mut corrupt = bytes.clone();
        corrupt[16] ^= 0xFF;
        assert!(decode_partition_file(&corrupt).is_err());
    }
}
