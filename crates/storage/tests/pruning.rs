//! Block skipping, property-tested: whatever the schema, layout,
//! compression policy, predicate, or delta history, the pruned scan path
//! is bit-identical to the predicate-filtered naive oracle — which reads
//! every file unpruned — and never reads *more* bytes than it.
//!
//! Three lifecycles are covered:
//!
//! * **Cold and warm** — a fresh [`ScanExecutor`] and a reused one (whose
//!   decode cache is hot) agree with the oracle on every random query.
//! * **Deltas + live repartition** — appends and deletes filter through
//!   the same predicate, and a snapshot pinned *before* a repartition
//!   flip keeps answering exactly while scans on the flipped table use
//!   the new files' freshly built pruning metadata.
//! * **Crash recovery** — a table reopened from its manifest + WAL prunes
//!   from the persisted zone maps / blooms and still matches both the
//!   oracle and the pre-crash answers.

use proptest::prelude::*;
use slicer_cost::DiskParams;
use slicer_model::{
    AttrKind, AttrSet, Literal, Partitioning, PredClause, PredOp, Predicate, Query, TableSchema,
};
use slicer_storage::{
    generate_table, scan_naive_query, scan_naive_query_snapshot, ColumnData, CompressionPolicy,
    IngestBatch, MemDir, ScanExecutor, StoredTable, TableData,
};
use std::sync::Arc;

/// Deterministic splitmix-style stream over a test seed.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn random_schema(state: &mut u64) -> (TableSchema, usize) {
    let attrs = 3 + (next(state) % 5) as usize; // 3..=7
                                                // Up to ~5000 rows so tables span one to three pruning chunks.
    let rows = 400 + (next(state) % 4600) as usize;
    let mut b = TableSchema::builder("T", rows as u64);
    for i in 0..attrs {
        let (size, kind) = match next(state) % 4 {
            0 => (4, AttrKind::Int),
            1 => (8, AttrKind::Decimal),
            2 => (4, AttrKind::Date),
            _ => ((1 + next(state) % 25) as u32, AttrKind::Text),
        };
        b = b.attr(format!("A{i}"), size, kind);
    }
    (b.build().expect("valid random schema"), rows)
}

fn random_layout(state: &mut u64, schema: &TableSchema) -> Partitioning {
    let n = schema.attr_count();
    let k = 1 + (next(state) % n as u64) as usize;
    let mut groups: Vec<AttrSet> = vec![AttrSet::default(); k];
    for a in 0..n {
        groups[(next(state) % k as u64) as usize].insert(a);
    }
    groups.retain(|g| !g.is_empty());
    Partitioning::new(schema, groups).expect("random layout covers the schema")
}

fn random_policy(state: &mut u64) -> CompressionPolicy {
    match next(state) % 3 {
        0 => CompressionPolicy::None,
        1 => CompressionPolicy::Dictionary,
        _ => CompressionPolicy::Default,
    }
}

/// A literal for `attr`, usually sampled from the actual data (so
/// predicates hit) and sometimes perturbed or out-of-domain (so zone
/// maps get to reject whole tables).
fn random_literal(state: &mut u64, data: &TableData, attr: usize) -> Literal {
    let row = (next(state) % data.rows as u64) as usize;
    let miss = next(state).is_multiple_of(4);
    match &data.columns[attr] {
        ColumnData::Int(v) => {
            let x = if miss { i32::MAX - 7 } else { v[row] };
            Literal::int(x)
        }
        ColumnData::Date(v) => {
            let x = if miss { -9 } else { v[row] };
            Literal::date(x)
        }
        ColumnData::Decimal(v) => {
            let x = if miss { v[row].wrapping_add(1) } else { v[row] };
            Literal::decimal(x)
        }
        ColumnData::Text(v) => {
            if miss {
                Literal::text("\u{7f}zzz-never-generated")
            } else {
                Literal::text(v[row].clone())
            }
        }
    }
}

fn random_predicate(state: &mut u64, schema: &TableSchema, data: &TableData) -> Predicate {
    let clauses = 1 + (next(state) % 2) as usize;
    let mut out = Vec::with_capacity(clauses);
    for _ in 0..clauses {
        let attr = (next(state) % schema.attr_count() as u64) as usize;
        let op = match next(state) % 3 {
            0 => PredOp::Eq,
            1 => PredOp::Le,
            _ => PredOp::Ge,
        };
        out.push(PredClause::new(
            schema.attr_id(&format!("A{attr}")).unwrap(),
            op,
            random_literal(state, data, attr),
        ));
    }
    Predicate::new(out)
}

fn random_query(state: &mut u64, schema: &TableSchema, data: &TableData, tag: u64) -> Query {
    let n = schema.attr_count();
    let mut set = AttrSet::default();
    for a in 0..n {
        if next(state) & 1 == 1 {
            set.insert(a);
        }
    }
    if set.is_empty() {
        set.insert((next(state) % n as u64) as usize);
    }
    // One query in five stays a pure projection: the legacy path must keep
    // riding along unchanged.
    if next(state).is_multiple_of(5) {
        return Query::new(format!("q{tag}"), set);
    }
    // Predicate drivers must be referenced — the scan has to decode them
    // to evaluate the clauses.
    let predicate = random_predicate(state, schema, data);
    for a in predicate.attrs().iter() {
        set.insert(a);
    }
    Query::new(format!("q{tag}"), set).with_predicate(predicate)
}

/// Fresh rows for an append: same schema, different seed, small count.
fn random_appends(state: &mut u64, schema: &TableSchema) -> TableData {
    let rows = 1 + (next(state) % 300) as usize;
    generate_table(schema, rows, next(state))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (a) Cold and warm pruned scans are bit-identical to the
    /// predicate-filtered oracle and never read more bytes than it.
    #[test]
    fn pruned_scans_match_the_oracle_cold_and_warm(seed in any::<u64>()) {
        let mut state = seed;
        let (schema, rows) = random_schema(&mut state);
        let data = generate_table(&schema, rows, next(&mut state));
        let layout = random_layout(&mut state, &schema);
        let table = StoredTable::load(&schema, &data, &layout, random_policy(&mut state));
        let disk = DiskParams::paper_testbed();
        let warm = ScanExecutor::new(&table);
        for i in 0..6u64 {
            let q = random_query(&mut state, &schema, &data, i);
            let oracle = scan_naive_query(&table, &q, &disk);
            let cold = ScanExecutor::new(&table).scan_query(&q, &disk);
            let hot = warm.scan_query(&q, &disk);
            prop_assert_eq!(cold.checksum, oracle.checksum, "cold scan diverged on {:?}", q);
            prop_assert_eq!(hot.checksum, oracle.checksum, "warm scan diverged on {:?}", q);
            prop_assert!(cold.bytes_read <= oracle.bytes_read);
            prop_assert!(hot.bytes_read <= oracle.bytes_read);
        }
    }

    /// (b) Predicates filter the delta store identically, and a snapshot
    /// pinned before a live repartition flip answers exactly while the
    /// flipped table prunes from the new files' metadata.
    #[test]
    fn pruning_survives_deltas_and_live_repartition(seed in any::<u64>()) {
        let mut state = seed;
        let (schema, rows) = random_schema(&mut state);
        let data = generate_table(&schema, rows, next(&mut state));
        let layout = random_layout(&mut state, &schema);
        let table = StoredTable::load(&schema, &data, &layout, random_policy(&mut state));
        let disk = DiskParams::paper_testbed();
        table
            .ingest(&IngestBatch::append(random_appends(&mut state, &schema)), &disk)
            .expect("append fits the schema");
        let deletes: Vec<u64> = (0..3).map(|_| next(&mut state) % rows as u64).collect();
        table.ingest(&IngestBatch::delete(deletes), &disk).expect("ids are visible");

        let pinned = table.snapshot();
        let queries: Vec<Query> =
            (0..4u64).map(|i| random_query(&mut state, &schema, &data, i)).collect();
        let before: Vec<u64> = queries
            .iter()
            .map(|q| {
                let got = ScanExecutor::new(&table).scan_query(q, &disk);
                let oracle = scan_naive_query(&table, q, &disk);
                assert_eq!(got.checksum, oracle.checksum, "pre-flip scan diverged");
                got.checksum
            })
            .collect();

        let flipped = random_layout(&mut state, &schema);
        table.repartition(&flipped, &disk);

        let exec = ScanExecutor::new(&table);
        for (q, expect) in queries.iter().zip(&before) {
            // The pinned snapshot still answers bit-identically...
            let old = exec.scan_query_snapshot(&pinned, q, &disk);
            prop_assert_eq!(old.checksum, *expect, "pinned snapshot changed its answer");
            prop_assert_eq!(old.checksum, scan_naive_query_snapshot(&pinned, q, &disk).checksum);
            // ...and the flipped table prunes the new files exactly.
            let new = exec.scan_query(q, &disk);
            let oracle = scan_naive_query(&table, q, &disk);
            prop_assert_eq!(new.checksum, oracle.checksum, "post-flip scan diverged");
            prop_assert_eq!(new.checksum, *expect, "repartition changed the answer");
            prop_assert!(new.bytes_read <= oracle.bytes_read);
        }
    }

    /// (c) A crash-recovered table (manifest + WAL replay) prunes from
    /// its persisted metadata and matches both the oracle and the
    /// pre-crash answers.
    #[test]
    fn pruning_survives_crash_recovery(seed in any::<u64>()) {
        let mut state = seed;
        let (schema, rows) = random_schema(&mut state);
        let data = generate_table(&schema, rows, next(&mut state));
        let layout = random_layout(&mut state, &schema);
        let policy = random_policy(&mut state);
        let dir: Arc<MemDir> = Arc::new(MemDir::new());
        let disk = DiskParams::paper_testbed();
        let table = StoredTable::create(&schema, &data, &layout, policy, dir.clone())
            .expect("create persists");
        table
            .ingest(&IngestBatch::append(random_appends(&mut state, &schema)), &disk)
            .expect("append fits the schema");
        table
            .ingest(&IngestBatch::delete(vec![next(&mut state) % rows as u64]), &disk)
            .expect("id is visible");

        let queries: Vec<Query> =
            (0..4u64).map(|i| random_query(&mut state, &schema, &data, i)).collect();
        let before: Vec<u64> = queries
            .iter()
            .map(|q| ScanExecutor::new(&table).scan_query(q, &disk).checksum)
            .collect();
        drop(table);

        let (reopened, report) = StoredTable::open(&schema, dir).expect("recovery succeeds");
        assert_eq!(report.torn, None, "clean shutdown leaves no torn tail");
        let exec = ScanExecutor::new(&reopened);
        for (q, expect) in queries.iter().zip(&before) {
            let got = exec.scan_query(q, &disk);
            let oracle = scan_naive_query(&reopened, q, &disk);
            prop_assert_eq!(got.checksum, oracle.checksum, "recovered scan diverged");
            prop_assert_eq!(got.checksum, *expect, "recovery changed the answer");
            prop_assert!(got.bytes_read <= oracle.bytes_read);
        }
    }
}
