//! Offline stand-in for `serde_derive`.
//!
//! The build container has no access to crates.io, so this proc-macro crate
//! implements just enough of `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! for the shapes this workspace actually serializes: structs with named
//! fields and enums with unit variants, neither generic. Anything fancier
//! fails loudly at compile time rather than silently misbehaving.
//!
//! The generated code targets the sibling `serde` shim's `Value`-based data
//! model (`serde::to_value` / `serde::from_value`), which the shim's JSON
//! front-end (`serde_json`) understands.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Enum with unit variants only.
    Enum { name: String, variants: Vec<String> },
}

/// Parse the derive input into the limited shape vocabulary we support.
fn parse(input: TokenStream) -> Shape {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                // `pub(crate)` etc.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: unexpected token {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive shim: generic types are not supported ({name})")
            }
            Some(_) => continue,
            None => panic!("serde_derive shim: missing body for {name}"),
        }
    };
    match kind.as_str() {
        "struct" => Shape::Struct {
            name,
            fields: parse_named_fields(body.stream()),
        },
        "enum" => Shape::Enum {
            name,
            variants: parse_unit_variants(body.stream()),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}`"),
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let field = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after {field}, got {other:?}"),
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle_depth += 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    tokens.next();
                    break;
                }
                Some(_) => {
                    tokens.next();
                }
                None => break,
            }
        }
        fields.push(field);
    }
    fields
}

fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                _ => break,
            }
        }
        let variant = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected variant name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => {
                variants.push(variant);
                break;
            }
            other =>

                panic!("serde_derive shim: only unit enum variants are supported, got {other:?} after {variant}"),
        }
        variants.push(variant);
    }
    variants
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse(input) {
        Shape::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push((\"{f}\".to_string(), ::serde::to_value(&self.{f})\
                         .map_err(<__S::Error as ::std::convert::From<::serde::Error>>::from)?));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize<__S: ::serde::Serializer>(&self, serializer: __S)\n\
                         -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> =\n\
                             ::std::vec::Vec::new();\n\
                         {pushes}\n\
                         serializer.serialize_value(::serde::Value::Map(__fields))\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => serializer.serialize_value(\
                         ::serde::Value::Str(\"{v}\".to_string())),\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize<__S: ::serde::Serializer>(&self, serializer: __S)\n\
                         -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive shim: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse(input) {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: {{\n\
                             let __v = __map.iter().find(|(k, _)| k == \"{f}\")\n\
                                 .map(|(_, v)| v.clone())\n\
                                 .unwrap_or(::serde::Value::Null);\n\
                             ::serde::from_value(__v).map_err(|e| \
                                 <__D::Error as ::serde::de::Error>::custom(\
                                     format!(\"field `{f}`: {{e}}\")))?\n\
                         }},\n"
                    )
                })
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn deserialize<__D: ::serde::Deserializer<'de>>(deserializer: __D)\n\
                         -> ::std::result::Result<Self, __D::Error> {{\n\
                         let __value = deserializer.take_value()?;\n\
                         let __map = match __value {{\n\
                             ::serde::Value::Map(m) => m,\n\
                             other => return Err(<__D::Error as ::serde::de::Error>::custom(\n\
                                 format!(\"expected map for {name}, got {{other:?}}\"))),\n\
                         }};\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn deserialize<__D: ::serde::Deserializer<'de>>(deserializer: __D)\n\
                         -> ::std::result::Result<Self, __D::Error> {{\n\
                         let __value = deserializer.take_value()?;\n\
                         let __s = match __value {{\n\
                             ::serde::Value::Str(s) => s,\n\
                             other => return Err(<__D::Error as ::serde::de::Error>::custom(\n\
                                 format!(\"expected string for {name}, got {{other:?}}\"))),\n\
                         }};\n\
                         match __s.as_str() {{\n\
                             {arms}\n\
                             other => Err(<__D::Error as ::serde::de::Error>::custom(\n\
                                 format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive shim: generated invalid Deserialize impl")
}
