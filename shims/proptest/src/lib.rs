//! Offline stand-in for `proptest`.
//!
//! Implements the strategy/`proptest!` surface the workspace's property
//! tests use: range and tuple strategies, `prop_map`, `collection::vec`,
//! `any::<T>()`, configurable case counts, and the `prop_assert*` macros.
//! Generation is deterministic per test (seeded from the test's module
//! path + name), so failures reproduce across runs. No shrinking: a failing
//! case reports its case number and message.

use std::ops::{Range, RangeInclusive};

/// One-stop imports (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test identifier.
    pub fn from_name(name: &str) -> TestRng {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `span` (> 0).
    pub fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure of one generated case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build from a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A value generator.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
strategy_tuple!(A);
strategy_tuple!(A, B);
strategy_tuple!(A, B, C);
strategy_tuple!(A, B, C, D);
strategy_tuple!(A, B, C, D, E);
strategy_tuple!(A, B, C, D, E, F);

/// String patterns as strategies, like proptest's regex strings. The shim
/// supports the subset the workspace uses: sequences of literal characters
/// and character classes `[a-z0-9 ]`, each optionally repeated `{n}` or
/// `{lo,hi}`. Anything fancier panics with a clear message.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let chars: Vec<char> = self.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a class or a literal.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed class in pattern {self:?}"))
                    + i;
                let mut alpha = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        for c in chars[j]..=chars[j + 2] {
                            alpha.push(c);
                        }
                        j += 3;
                    } else {
                        alpha.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                alpha
            } else {
                let c = chars[i];
                assert!(
                    !"(){}*+?|^$.\\".contains(c),
                    "unsupported pattern syntax {c:?} in {self:?}"
                );
                i += 1;
                vec![c]
            };
            // Optional repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed repetition in pattern {self:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("repetition bound"),
                        b.trim().parse().expect("repetition bound"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for the full domain of `T`.
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the whole-domain strategy.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of values from `element`, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)+) => {
        $($crate::__proptest_one!{ ($cfg) $(#[$meta])* fn $name($($arg in $strat),*) $body })+
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)+) => {
        $($crate::__proptest_one!{
            ($crate::ProptestConfig::default()) $(#[$meta])* fn $name($($arg in $strat),*) $body
        })+
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_one {
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),*) $body:block) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "property `{}` failed on case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
    };
}

/// Assert a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let x = Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&x));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::from_name("vecs");
        let s = crate::collection::vec(0usize..5, 2..6);
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_compiles_and_runs(a in 0usize..10, b in 0usize..10) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(a + b, b + a);
            if a == b { return Ok(()); }
            prop_assert_ne!(a, b);
        }
    }
}
