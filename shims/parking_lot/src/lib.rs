//! Offline stand-in for `parking_lot`: [`Mutex`] and [`RwLock`] with the
//! poison-free locking API, implemented over `std::sync`. A poisoned std
//! lock (a panic while held) is transparently recovered, matching
//! parking_lot's no-poisoning semantics.

use std::sync;

/// Poison-free mutex.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Block until the lock is held.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Poison-free reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
