//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply-cloneable view into shared immutable bytes whose
//! [`Buf`] accessors consume from the front (advancing the view, like the
//! real crate). [`BytesMut`] is an append-only builder that freezes into
//! [`Bytes`]. Only the little-endian accessors the storage codecs use are
//! provided.

use std::ops::Deref;
use std::sync::Arc;

/// Shared immutable byte buffer; clones share the allocation.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Bytes remaining in the view.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// True iff no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::new(v),
            start: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// Read-cursor operations (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);
    /// Pop one byte.
    fn get_u8(&mut self) -> u8;

    /// Pop a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        for x in &mut b {
            *x = self.get_u8();
        }
        u16::from_le_bytes(b)
    }

    /// Pop a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        for x in &mut b {
            *x = self.get_u8();
        }
        u32::from_le_bytes(b)
    }

    /// Pop a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        self.get_u32_le() as i32
    }

    /// Pop a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        for x in &mut b {
            *x = self.get_u8();
        }
        u64::from_le_bytes(b)
    }

    /// Pop a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.start += n;
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.data[self.start];
        self.start += 1;
        b
    }
}

/// Growable byte builder (subset of `bytes::BytesMut`).
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    v: Vec<u8>,
}

impl BytesMut {
    /// Empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            v: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// Convert to an immutable shared [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.v)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.v
    }
}

/// Append operations (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, b: u8);
    /// Append a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Append `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, x: u16) {
        self.put_slice(&x.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, x: u32) {
        self.put_slice(&x.to_le_bytes());
    }

    /// Append a little-endian `i32`.
    fn put_i32_le(&mut self, x: i32) {
        self.put_slice(&x.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, x: u64) {
        self.put_slice(&x.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, x: i64) {
        self.put_slice(&x.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.v.push(b);
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.v.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_little_endian() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16_le(0x1234);
        b.put_u32_le(0xdeadbeef);
        b.put_i32_le(-5);
        b.put_i64_le(-6_000_000_000);
        b.put_slice(b"xy");
        b.put_bytes(b' ', 3);
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xdeadbeef);
        assert_eq!(r.get_i32_le(), -5);
        assert_eq!(r.get_i64_le(), -6_000_000_000);
        assert_eq!(&r[..2], b"xy");
        assert_eq!(r.remaining(), 5);
    }

    #[test]
    fn clones_are_independent_cursors() {
        let b: Bytes = vec![1, 2, 3].into();
        let mut c = b.clone();
        assert_eq!(c.get_u8(), 1);
        assert_eq!(b.len(), 3, "original view unaffected");
        assert_eq!(c.len(), 2);
    }
}
