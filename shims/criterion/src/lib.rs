//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark-definition API the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups, `BenchmarkId`,
//! throughput annotations, `Bencher::iter`) over a simple adaptive timer:
//! each benchmark is warmed up once, then run in doubling batches until the
//! measured window exceeds ~200 ms (or an iteration cap), and the mean time
//! per iteration is printed as `group/id ... <time>`.
//!
//! Set `CRITERION_SHIM_MAX_SECONDS` to bound the measuring window per
//! benchmark (useful in CI smoke runs).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { text: s }
    }
}

/// Throughput annotation (recorded, reported alongside the time).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into().text, None, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Lower/raise the sample count (kept for API compatibility; the shim's
    /// adaptive timer treats it as a hint).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Record the per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into().text, self.throughput, &mut f);
        self
    }

    /// Run a benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.text, self.throughput, &mut |b| f(b, input));
        self
    }

    /// End the group (no-op; printing happens per benchmark).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time the closure adaptively; see the crate docs for the scheme.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let budget = max_seconds();
        // Warmup: one call (also primes caches/allocations).
        black_box(f());
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed.as_secs_f64() >= 0.2_f64.min(budget) || iters >= 1 << 24 {
                self.measured = Some((elapsed, iters));
                return;
            }
            iters = iters.saturating_mul(2);
        }
    }
}

fn max_seconds() -> f64 {
    std::env::var("CRITERION_SHIM_MAX_SECONDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5.0)
}

fn run_one(group: &str, id: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { measured: None };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    match bencher.measured {
        Some((elapsed, iters)) => {
            let per_iter = elapsed.as_secs_f64() / iters as f64;
            let extra = match throughput {
                Some(Throughput::Bytes(b)) => {
                    format!("  {:.1} MiB/s", b as f64 / per_iter / (1024.0 * 1024.0))
                }
                Some(Throughput::Elements(e)) => {
                    format!("  {:.0} elem/s", e as f64 / per_iter)
                }
                None => String::new(),
            };
            println!("bench: {label:<60} {}{extra}", fmt_time(per_iter));
        }
        None => println!("bench: {label:<60} (no measurement)"),
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s/iter")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms/iter", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs/iter", seconds * 1e6)
    } else {
        format!("{:.1} ns/iter", seconds * 1e9)
    }
}

/// Bundle benchmark functions under one runner name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        std::env::set_var("CRITERION_SHIM_MAX_SECONDS", "0.01");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        g.bench_function("add", |b| b.iter(|| black_box(1u64 + 1)));
        g.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("a", 7).text, "a/7");
        assert_eq!(BenchmarkId::from_parameter("p").text, "p");
    }
}
