//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic SplitMix64-based [`rngs::StdRng`] plus the
//! [`Rng`]/[`SeedableRng`]/[`seq::SliceRandom`] surface the data and
//! workload generators use. Deterministic sequences are the contract here
//! (the workspace's generators are seeded everywhere); statistical quality
//! beyond SplitMix64 is not required.

use std::ops::{Range, RangeInclusive};

/// Raw 64-bit generator.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Deterministic RNG from a seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Uniform sample from a range (exclusive or inclusive).
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen_f64() < p
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: RngCore> Rng for T {}

/// Marker for types [`Rng::gen_range`] can produce; mirrors rand's
/// `SampleUniform` and exists for the same reason — it disambiguates type
/// inference in expressions like `base + rng.gen_range(-30..=30)`.
pub trait SampleUniform {}

macro_rules! sample_uniform {
    ($($t:ty),*) => {$( impl SampleUniform for $t {} )*};
}
sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that can be sampled uniformly into `T`.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift (Lemire): deterministic, near-uniform, branch-free.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! sample_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}
sample_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named RNGs (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Uniformly random element, `None` for an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-30..=30i32);
            assert!((-30..=30).contains(&y));
            let z = rng.gen_range(100..10_000_000i64);
            assert!((100..10_000_000).contains(&z));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn choose_and_shuffle_cover_elements() {
        let mut rng = StdRng::seed_from_u64(9);
        let xs = [1, 2, 3];
        assert!(xs.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
