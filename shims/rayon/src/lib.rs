//! Offline stand-in for `rayon`.
//!
//! Provides eager, order-preserving data parallelism over
//! `std::thread::scope`: [`ParIter`] materializes its input, `map` fans the
//! closure out across all available cores in contiguous chunks, and the
//! terminal adapters (`collect`, `min_by`, `reduce`, …) run sequentially on
//! the order-preserved results. That matches how this workspace uses rayon —
//! one expensive `map` over a candidate list followed by a deterministic
//! reduction — while keeping the implementation dependency-free.
//!
//! Determinism contract: `map` preserves input order exactly, so
//! `par_iter().map(f).collect::<Vec<_>>()` equals the sequential
//! `iter().map(f).collect()` whenever `f` is pure.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Entry points (mirrors `rayon::prelude`).
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// Explicit worker-thread cap set via [`ThreadPoolBuilder::build_global`]
/// (0 = unset, fall through to `RAYON_NUM_THREADS` / the hardware count).
static THREAD_CAP: AtomicUsize = AtomicUsize::new(0);

/// Error type mirrored from `rayon::ThreadPoolBuildError` (the shim's
/// builder cannot actually fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool build error")
    }
}

/// Mirror of `rayon::ThreadPoolBuilder`, reduced to the global worker
/// count. One shim liberty: `build_global` may be called repeatedly to
/// *re*-cap the effective thread count mid-process (real rayon errors on
/// the second call; the multicore re-measure benches lean on the shim
/// behavior to emit one record per thread count from one process).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with no explicit thread count.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Cap the effective worker count at `num_threads` (0 = reset to the
    /// `RAYON_NUM_THREADS` / hardware default).
    pub fn num_threads(mut self, num_threads: usize) -> ThreadPoolBuilder {
        self.num_threads = num_threads;
        self
    }

    /// Install the cap globally. Infallible in the shim (see the type
    /// docs); the `Result` mirrors the real signature.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        THREAD_CAP.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Conversion into a parallel iterator (owning).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Convert.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type.
    type Item: Send + 'a;
    /// Convert.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Number of worker threads to fan out across: an explicit
/// [`ThreadPoolBuilder`] cap wins, then the `RAYON_NUM_THREADS`
/// environment variable, then the hardware parallelism. As in real rayon,
/// the variable is resolved once per process (this sits on the per-scan
/// hot path — no env lock or allocation per call).
pub fn current_num_threads() -> usize {
    let cap = THREAD_CAP.load(Ordering::Relaxed);
    if cap > 0 {
        return cap;
    }
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(hardware_parallelism)
    })
}

/// The hardware thread count (the pool's worker-spawn upper bound,
/// independent of any cap).
fn hardware_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// An order-preserving parallel iterator over a materialized item list.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map: applies `f` across all cores, preserving input order.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: par_map(self.items, f),
        }
    }

    /// Parallel filter-map (order-preserving).
    pub fn filter_map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> Option<R> + Sync,
    {
        ParIter {
            items: par_map(self.items, f).into_iter().flatten().collect(),
        }
    }

    /// Parallel side effects.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let _ = par_map(self.items, |x| {
            f(x);
        });
    }

    /// Collect the (already computed) items.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sequential minimum by comparator over the materialized items; the
    /// first of equal minima wins (stable, deterministic).
    pub fn min_by<F>(self, mut cmp: F) -> Option<T>
    where
        F: FnMut(&T, &T) -> std::cmp::Ordering,
    {
        let mut best: Option<T> = None;
        for item in self.items {
            best = match best {
                None => Some(item),
                Some(b) => {
                    if cmp(&item, &b) == std::cmp::Ordering::Less {
                        Some(item)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        best
    }

    /// Left-to-right reduction (deterministic).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T,
        OP: Fn(T, T) -> T,
    {
        self.items.into_iter().fold(identity(), op)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<T: Send> ParIter<T>
where
    T: std::iter::Sum<T>,
{
    /// Sum the items (sequential, deterministic order).
    pub fn sum(self) -> T {
        self.items.into_iter().sum()
    }
}

/// The parallel kernel: map `items` through `f` on the persistent worker
/// pool, preserving order. Falls back to a sequential map for tiny inputs
/// (pool dispatch costs a few microseconds per chunk; below this size a
/// sequential loop wins).
fn par_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let threads = current_num_threads();
    let n = items.len();
    // Nested parallelism runs sequentially: a pool worker dispatching to
    // the pool and blocking on the results would deadlock against itself
    // (real rayon nests via work-stealing; this shim does not).
    if threads <= 1 || n < 2 || pool::on_pool_worker() {
        return items.into_iter().map(f).collect();
    }
    pool::run_chunked(items, threads, &f)
}

/// A lazily-started persistent worker pool. Spawning OS threads per
/// parallel call costs tens of microseconds — fatal for the workspace's
/// sub-millisecond optimizer scans — so workers are spawned once and jobs
/// are dispatched over channels as erased closures.
///
/// Soundness of the borrow erasure: `run_chunked` transmutes the borrowed
/// closure (and through it any `T`/`R` borrows) to `'static` to ship it to
/// the workers, and is sound because the function cannot return, unwind or
/// otherwise invalidate the borrow before every dispatched job has
/// reported: the caller's own chunk runs under `catch_unwind`, and the
/// result loop waits for all jobs (workers run jobs under `catch_unwind`
/// too, so a panicking job drops its result sender rather than wedging the
/// pool — the chunk-count assertion then surfaces the failure).
mod pool {
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::mpsc::{channel, Receiver, Sender};
    use std::sync::{Mutex, OnceLock};

    type Job = Box<dyn FnOnce() + Send + 'static>;

    thread_local! {
        /// True on pool worker threads; guards against nested dispatch.
        static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    }

    /// True iff the current thread is one of the pool's workers.
    pub(super) fn on_pool_worker() -> bool {
        IS_POOL_WORKER.with(|w| w.get())
    }

    static POOL: OnceLock<Mutex<Vec<Sender<Job>>>> = OnceLock::new();

    fn workers() -> &'static Mutex<Vec<Sender<Job>>> {
        POOL.get_or_init(|| {
            // Spawn up to the hardware parallelism, independent of any
            // soft cap: the cap only bounds how many chunks a dispatch
            // fans out, so it can be raised later without re-spawning.
            let n = super::hardware_parallelism().saturating_sub(1).max(1);
            let mut senders = Vec::with_capacity(n);
            for i in 0..n {
                let (tx, rx): (Sender<Job>, Receiver<Job>) = channel();
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{i}"))
                    .spawn(move || {
                        IS_POOL_WORKER.with(|w| w.set(true));
                        while let Ok(job) = rx.recv() {
                            // Contain job panics so one bad closure does
                            // not wedge the shared pool.
                            let _ = catch_unwind(AssertUnwindSafe(job));
                        }
                    })
                    .expect("spawn rayon-shim worker");
                senders.push(tx);
            }
            Mutex::new(senders)
        })
    }

    /// Map `items` in contiguous chunks across the pool, the caller
    /// processing the first chunk itself. Order-preserving.
    pub(super) fn run_chunked<T: Send, R: Send>(
        items: Vec<T>,
        threads: usize,
        f: &(impl Fn(T) -> R + Sync),
    ) -> Vec<R> {
        let n = items.len();
        let nchunks = threads.min(n);
        let chunk = n.div_ceil(nchunks);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(nchunks);
        let mut it = items.into_iter();
        loop {
            let c: Vec<T> = it.by_ref().take(chunk).collect();
            if c.is_empty() {
                break;
            }
            chunks.push(c);
        }
        let nchunks = chunks.len();
        let (done_tx, done_rx) = channel::<(usize, Vec<R>)>();
        let mut chunks = chunks.into_iter().enumerate();
        let first_chunk = chunks.next();
        let mut dispatched = 0usize;
        {
            let senders = workers().lock().expect("pool lock");
            for (ci, c) in chunks {
                let done = done_tx.clone();
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let out: Vec<R> = c.into_iter().map(f).collect();
                    let _ = done.send((ci, out));
                });
                // SAFETY: only the lifetime bound is erased (the closure
                // type itself is already opaque behind the fat pointer, so
                // the layouts are identical). The borrow of `f` — and any
                // borrows inside T/R — outlives every job because this
                // call blocks until all jobs have reported before
                // returning or unwinding; see the module docs.
                let job: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
                senders[dispatched % senders.len()]
                    .send(job)
                    .expect("worker alive");
                dispatched += 1;
            }
        }
        drop(done_tx);
        // Caller does chunk 0 while workers run the rest; a panic here must
        // still wait for the workers before unwinding (borrow soundness).
        let own = first_chunk.map(|(ci, c)| {
            (
                ci,
                catch_unwind(AssertUnwindSafe(|| {
                    c.into_iter().map(f).collect::<Vec<R>>()
                })),
            )
        });
        let mut results: Vec<(usize, Vec<R>)> = Vec::with_capacity(nchunks);
        for r in done_rx.iter() {
            results.push(r);
        }
        match own {
            Some((ci, Ok(v))) => results.push((ci, v)),
            Some((_, Err(payload))) => resume_unwind(payload),
            None => {}
        }
        assert_eq!(results.len(), nchunks, "a rayon-shim worker job panicked");
        results.sort_by_key(|(i, _)| *i);
        results.into_iter().flat_map(|(_, v)| v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, v.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice_refs() {
        let v = vec![3usize, 1, 2];
        let out: Vec<usize> = v.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![4, 2, 3]);
    }

    #[test]
    fn range_and_min_by() {
        let min = (0..100usize)
            .into_par_iter()
            .map(|i| (i as i64 - 40).abs())
            .min_by(|a, b| a.cmp(b));
        assert_eq!(min, Some(0));
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        let out: Vec<usize> = (0..64usize)
            .into_par_iter()
            .map(|i| {
                // Nested par_iter from inside a pool job must complete
                // (it degrades to sequential).
                (0..8usize)
                    .into_par_iter()
                    .map(|j| i + j)
                    .collect::<Vec<_>>()
                    .len()
            })
            .collect();
        assert_eq!(out, vec![8; 64]);
    }

    #[test]
    fn thread_cap_bounds_current_num_threads_and_resets() {
        let default = crate::current_num_threads();
        crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build_global()
            .expect("shim builder is infallible");
        assert_eq!(crate::current_num_threads(), 3);
        // Re-capping is allowed (shim liberty) and parallel maps stay
        // order-preserving under a cap.
        let v: Vec<u64> = (0..500).collect();
        let out: Vec<u64> = v.clone().into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, v.iter().map(|x| x + 1).collect::<Vec<_>>());
        crate::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .expect("reset");
        assert_eq!(crate::current_num_threads(), default);
    }

    #[test]
    fn first_of_equal_minima_wins() {
        let items = vec![(1.0f64, 'a'), (1.0, 'b'), (0.5, 'c'), (0.5, 'd')];
        let min = items
            .into_par_iter()
            .min_by(|x, y| x.0.partial_cmp(&y.0).unwrap())
            .unwrap();
        assert_eq!(min.1, 'c');
    }
}
