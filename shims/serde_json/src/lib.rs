//! Offline stand-in for `serde_json`: renders and parses JSON through the
//! `serde` shim's [`serde::Value`] data model. Supports exactly what the
//! workspace uses: [`to_string`], [`to_string_pretty`] and [`from_str`].

use serde::Value;
use std::fmt;

/// JSON error: a message, optionally with a byte offset.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let v = serde::to_value(value)?;
    let mut out = String::new();
    write_value(&v, None, 0, &mut out);
    Ok(out)
}

/// Serialize to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let v = serde::to_value(value)?;
    let mut out = String::new();
    write_value(&v, Some(2), 0, &mut out);
    Ok(out)
}

/// Parse JSON into any deserializable type.
pub fn from_str<T>(s: &str) -> Result<T, Error>
where
    T: for<'de> serde::Deserialize<'de>,
{
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    serde::from_value(v).map_err(Error::from)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&x.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => write_block(items.iter().map(Item::Seq), '[', ']', indent, depth, out),
        Value::Map(entries) => write_block(
            entries.iter().map(|(k, v)| Item::Map(k, v)),
            '{',
            '}',
            indent,
            depth,
            out,
        ),
    }
}

enum Item<'a> {
    Seq(&'a Value),
    Map(&'a str, &'a Value),
}

fn write_block<'a>(
    items: impl Iterator<Item = Item<'a>>,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) {
    out.push(open);
    let mut first = true;
    for item in items {
        if !first {
            out.push(',');
        }
        first = false;
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        match item {
            Item::Seq(v) => write_value(v, indent, depth + 1, out),
            Item::Map(k, v) => {
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(v, indent, depth + 1, out);
            }
        }
    }
    if !first {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf-8 in number".into()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8 in string".into()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => return Err(Error(format!("expected , or ] but got {other:?}"))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => return Err(Error(format!("expected , or }} but got {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_nesting() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[],[3]]");
        let back: Vec<Vec<u32>> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = to_string(&"a\"b\\c\nd".to_string()).unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, "a\"b\\c\nd");
    }

    #[test]
    fn floats_roundtrip() {
        let xs = vec![1.0f64, -2.5, 1e-9, 12345.6789];
        let s = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v: Vec<u32> = vec![1, 2];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
    }
}
