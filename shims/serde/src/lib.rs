//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so this crate provides the
//! subset of serde's API the workspace uses, built on an explicit
//! [`Value`] data model instead of serde's visitor machinery:
//!
//! * [`Serialize`] / [`Serializer`] with `collect_seq` and
//!   [`Serializer::serialize_value`] (what the derive macro targets);
//! * [`Deserialize`] / [`Deserializer`] with [`Deserializer::take_value`];
//! * `de::Error::custom`, mirroring serde's error-construction idiom;
//! * derive macros re-exported from the sibling `serde_derive` shim.
//!
//! Hand-written impls in the workspace (e.g. `AttrSet`'s sequence encoding)
//! compile unchanged against this surface, and would compile unchanged
//! against real serde if the dependency is ever swapped back.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// The self-describing data model everything serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Map with string keys, preserving insertion order.
    Map(Vec<(String, Value)>),
}

/// Serialization/deserialization error: a message.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Receives a [`Value`]; the only sink the shim's data model needs.
pub trait Serializer: Sized {
    /// Success type.
    type Ok;
    /// Error type; must absorb shim-internal errors.
    type Error: From<Error>;

    /// Consume a fully-built [`Value`].
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Serialize an iterator as a sequence (serde's `collect_seq`).
    fn collect_seq<I>(self, iter: I) -> Result<Self::Ok, Self::Error>
    where
        I: IntoIterator,
        I::Item: Serialize,
    {
        let mut items = Vec::new();
        for item in iter {
            items.push(to_value(&item).map_err(Self::Error::from)?);
        }
        self.serialize_value(Value::Seq(items))
    }
}

/// A type that can serialize itself into any [`Serializer`].
pub trait Serialize {
    /// Serialize `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// The identity serializer: produces the [`Value`] itself.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    fn serialize_value(self, value: Value) -> Result<Value, Error> {
        Ok(value)
    }
}

/// Serialize anything into a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    value.serialize(ValueSerializer)
}

/// Deserialization traits and helpers (mirrors `serde::de`).
pub mod de {
    /// Error-construction trait, mirroring `serde::de::Error`.
    pub trait Error: Sized {
        /// Build an error from any displayable message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    impl Error for super::Error {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            super::Error(msg.to_string())
        }
    }
}

/// Produces a [`Value`] for [`Deserialize`] impls to destructure.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;

    /// Yield the underlying [`Value`].
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A type constructible from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserialize an instance.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// The identity deserializer around an owned [`Value`].
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = Error;
    fn take_value(self) -> Result<Value, Error> {
        Ok(self.0)
    }
}

/// Deserialize anything from a [`Value`].
pub fn from_value<T>(value: Value) -> Result<T, Error>
where
    T: for<'de> Deserialize<'de>,
{
    T::deserialize(ValueDeserializer(value))
}

// ---------------------------------------------------------------------
// Serialize impls for primitives and std containers.
// ---------------------------------------------------------------------

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::I64(*self as i64))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Serialize for u64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        if *self <= i64::MAX as u64 {
            s.serialize_value(Value::I64(*self as i64))
        } else {
            s.serialize_value(Value::U64(*self))
        }
    }
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (*self as u64).serialize(s)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::F64(*self as f64))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::F64(*self))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.clone()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.collect_seq(self.iter())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.collect_seq(self.iter())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => v.serialize(s),
            None => s.serialize_value(Value::Null),
        }
    }
}

// ---------------------------------------------------------------------
// Deserialize impls for primitives and std containers.
// ---------------------------------------------------------------------

fn num_as_i64(v: &Value) -> Option<i64> {
    match v {
        Value::I64(x) => Some(*x),
        Value::U64(x) => i64::try_from(*x).ok(),
        Value::F64(x) if x.fract() == 0.0 && x.abs() < 9e18 => Some(*x as i64),
        _ => None,
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                num_as_i64(&v)
                    .and_then(|x| <$t>::try_from(x).ok())
                    .ok_or_else(|| {
                        de::Error::custom(format!(
                            "expected {}, got {v:?}", stringify!($t)
                        ))
                    })
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl<'de> Deserialize<'de> for u64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        match v {
            Value::U64(x) => Ok(x),
            ref other => num_as_i64(other)
                .and_then(|x| u64::try_from(x).ok())
                .ok_or_else(|| de::Error::custom(format!("expected u64, got {v:?}"))),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        match v {
            Value::F64(x) => Ok(x),
            Value::I64(x) => Ok(x as f64),
            Value::U64(x) => Ok(x as f64),
            other => Err(de::Error::custom(format!("expected f64, got {other:?}"))),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|x| x as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(de::Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(de::Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<'de, T> Deserialize<'de> for Vec<T>
where
    T: for<'x> Deserialize<'x>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|v| from_value(v).map_err(de::Error::custom))
                .collect(),
            other => Err(de::Error::custom(format!(
                "expected sequence, got {other:?}"
            ))),
        }
    }
}

impl<'de, T> Deserialize<'de> for Option<T>
where
    T: for<'x> Deserialize<'x>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(None),
            other => from_value(other).map(Some).map_err(de::Error::custom),
        }
    }
}
