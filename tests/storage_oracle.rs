//! Storage-engine oracle tests: whatever the layout and codec, a scan must
//! return exactly the same logical result; compression must round-trip; and
//! the simulated I/O accounting must follow the cost model's shape.

use proptest::prelude::*;
use slicer::prelude::*;
use slicer::storage::{
    decode, encode, generate_table, scan, Codec, ColumnData, CompressionPolicy, StoredTable,
};

fn orders_schema(rows: u64) -> TableSchema {
    tpch::table(tpch::TpchTable::Orders, 1.0).with_row_count(rows)
}

#[test]
fn scans_agree_across_every_layout_codec_combination() {
    let rows = 3_000;
    let schema = orders_schema(rows);
    let data = generate_table(&schema, rows as usize, 99);
    let disk = DiskParams::paper_testbed();
    let hc_layout = {
        let w = Workload::with_queries(
            &schema,
            vec![
                Query::new("q1", schema.attr_set(&["OrderKey", "TotalPrice"]).unwrap()),
                Query::new("q2", schema.attr_set(&["Comment"]).unwrap()),
            ],
        )
        .unwrap();
        let m = HddCostModel::paper_testbed();
        HillClimb::new()
            .partition(&PartitionRequest::new(&schema, &w, &m))
            .unwrap()
    };

    for referenced in [
        schema.attr_set(&["OrderKey"]).unwrap(),
        schema
            .attr_set(&["OrderKey", "CustKey", "TotalPrice"])
            .unwrap(),
        schema.attr_set(&["Comment", "OrderDate"]).unwrap(),
        schema.all_attrs(),
    ] {
        let mut checksums = Vec::new();
        for policy in [
            CompressionPolicy::None,
            CompressionPolicy::Default,
            CompressionPolicy::Dictionary,
        ] {
            for layout in [
                Partitioning::row(&schema),
                Partitioning::column(&schema),
                hc_layout.clone(),
            ] {
                let t = StoredTable::load(&schema, &data, &layout, policy);
                checksums.push(scan(&t, referenced, &disk).checksum);
            }
        }
        assert!(
            checksums.windows(2).all(|w| w[0] == w[1]),
            "checksum mismatch for {referenced:?}: {checksums:?}"
        );
    }
}

#[test]
fn compression_policies_trade_size_for_fixed_width() {
    let rows = 5_000;
    let schema = orders_schema(rows);
    let data = generate_table(&schema, rows as usize, 7);
    let col = Partitioning::column(&schema);
    let plain = StoredTable::load(&schema, &data, &col, CompressionPolicy::None);
    let def = StoredTable::load(&schema, &data, &col, CompressionPolicy::Default);
    assert!(
        def.stored_bytes() < plain.stored_bytes(),
        "default compression must shrink data"
    );
    // Default policy leaves some files variable-width; dictionary never.
    let dict = StoredTable::load(&schema, &data, &col, CompressionPolicy::Dictionary);
    assert!(dict.snapshot().files.iter().all(|f| f.fixed_width()));
    assert!(def.snapshot().files.iter().any(|f| !f.fixed_width()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn int_columns_roundtrip_all_codecs(values in proptest::collection::vec(any::<i32>(), 1..300)) {
        let col = ColumnData::Int(values);
        for codec in [Codec::Plain, Codec::Dictionary, Codec::Delta, Codec::Lz] {
            let enc = encode(&col, codec);
            let dec = decode(&enc, &ColumnData::Int(vec![]));
            prop_assert_eq!(&col, &dec, "codec {:?}", codec);
        }
    }

    #[test]
    fn text_columns_roundtrip_all_codecs(
        values in proptest::collection::vec("[a-zA-Z0-9 ]{1,40}", 1..120),
    ) {
        // Trailing spaces are not preserved by the padded fixed-width form,
        // so normalize first (schema widths are trims anyway).
        let values: Vec<String> = values.iter().map(|s| s.trim_end().to_string())
            .map(|s| if s.is_empty() { "x".to_string() } else { s })
            .collect();
        let col = ColumnData::Text(values);
        for codec in [Codec::Plain, Codec::Dictionary, Codec::Lz] {
            let enc = encode(&col, codec);
            let dec = decode(&enc, &ColumnData::Text(vec![]));
            prop_assert_eq!(&col, &dec, "codec {:?}", codec);
        }
    }

    #[test]
    fn decimal_columns_roundtrip(values in proptest::collection::vec(any::<i64>(), 1..200)) {
        let col = ColumnData::Decimal(values);
        for codec in [Codec::Plain, Codec::Delta, Codec::Lz] {
            let enc = encode(&col, codec);
            let dec = decode(&enc, &ColumnData::Decimal(vec![]));
            prop_assert_eq!(&col, &dec, "codec {:?}", codec);
        }
    }
}

#[test]
fn narrower_projections_read_fewer_bytes() {
    let rows = 4_000;
    let schema = orders_schema(rows);
    let data = generate_table(&schema, rows as usize, 5);
    let disk = DiskParams::paper_testbed();
    let col = StoredTable::load(
        &schema,
        &data,
        &Partitioning::column(&schema),
        CompressionPolicy::None,
    );
    let one = scan(&col, schema.attr_set(&["OrderKey"]).unwrap(), &disk);
    let all = scan(&col, schema.all_attrs(), &disk);
    assert!(one.bytes_read < all.bytes_read);
    assert!(one.io_seconds <= all.io_seconds);
}
