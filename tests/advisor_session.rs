//! Budgeted advisor sessions: the unlimited-budget session must be
//! byte-identical to the one-shot `partition()` for every advisor, and a
//! budget-capped session must always return a valid best-so-far layout
//! early — the anytime contract of the `AdvisorSession` driver.

use proptest::prelude::*;
use slicer::core::{paper_advisors, AdvisorSession, Budget, SessionStep};
use slicer::cost::{CostModel, MainMemoryCostModel};
use slicer::prelude::*;
use slicer::workloads::synth::{table_and_workload, AccessPattern, SyntheticSpec};
use std::time::Duration;

fn spec_strategy() -> impl Strategy<Value = SyntheticSpec> {
    (2usize..10, 1usize..10, any::<u64>(), 0usize..3).prop_map(|(attrs, queries, seed, pattern)| {
        SyntheticSpec {
            attrs,
            rows: 500_000,
            queries,
            pattern: match pattern {
                0 => AccessPattern::Regular { classes: 2 },
                1 => AccessPattern::Fragmented,
                _ => AccessPattern::Uniform { p: 0.35 },
            },
            seed,
        }
    })
}

fn models() -> Vec<Box<dyn CostModel>> {
    vec![
        Box::new(HddCostModel::paper_testbed()),
        Box::new(MainMemoryCostModel::paper_testbed()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn unlimited_session_equals_one_shot_partition(spec in spec_strategy()) {
        let (table, workload) = table_and_workload(&spec);
        for model in models() {
            let req = PartitionRequest::new(&table, &workload, model.as_ref());
            for advisor in paper_advisors() {
                let one_shot = advisor.partition(&req)
                    .unwrap_or_else(|e| panic!("{} one-shot failed: {e}", advisor.name()));
                let mut session = AdvisorSession::new(&req, Budget::UNLIMITED);
                let via_session = advisor.partition_session(&mut session)
                    .unwrap_or_else(|e| panic!("{} session failed: {e}", advisor.name()));
                prop_assert_eq!(
                    &one_shot, &via_session,
                    "{} diverged under {}: one-shot {} vs session {}",
                    advisor.name(), model.name(), one_shot, via_session
                );
                prop_assert!(
                    !session.stats().truncated,
                    "{}: unlimited session reported truncation", advisor.name()
                );
            }
        }
    }

    #[test]
    fn budget_capped_sessions_return_valid_layouts(
        spec in spec_strategy(),
        cap in 0u64..4,
    ) {
        let (table, workload) = table_and_workload(&spec);
        let model = HddCostModel::paper_testbed();
        let req = PartitionRequest::new(&table, &workload, &model);
        for advisor in paper_advisors() {
            let mut session = AdvisorSession::new(&req, Budget::steps(cap));
            let layout = advisor.partition_session(&mut session)
                .unwrap_or_else(|e| panic!("{} capped failed: {e}", advisor.name()));
            // Anytime contract: the early layout is a complete, disjoint
            // partitioning no matter where the budget stopped the search.
            prop_assert!(
                Partitioning::new(&table, layout.partitions().to_vec()).is_ok(),
                "{}: invalid best-so-far layout {}", advisor.name(), layout
            );
            prop_assert!(
                session.stats().steps <= cap,
                "{}: {} steps exceed the cap of {cap}",
                advisor.name(), session.stats().steps
            );
        }
    }

    #[test]
    fn hillclimb_step_caps_are_monotone(spec in spec_strategy()) {
        // More budget never hurts HillClimb: its commits strictly improve,
        // so the workload cost is non-increasing in the step cap.
        let (table, workload) = table_and_workload(&spec);
        let model = HddCostModel::paper_testbed();
        let req = PartitionRequest::new(&table, &workload, &model);
        let mut last = f64::INFINITY;
        for steps in 0..5 {
            let mut session = AdvisorSession::new(&req, Budget::steps(steps));
            let layout = HillClimb::new().partition_session(&mut session).unwrap();
            let cost = req.cost(&layout);
            prop_assert!(
                cost <= last + 1e-9 * last.abs().max(1.0),
                "cost rose from {last} to {cost} at cap {steps}"
            );
            last = cost;
        }
    }
}

#[test]
fn deadline_capped_hillclimb_returns_best_so_far_early() {
    // The acceptance scenario: a zero-deadline HillClimb session stops at
    // its column seed — valid, complete, and exactly the layout every
    // later improvement would have started from — while the unlimited
    // session keeps merging.
    let b = slicer::workloads::tpch::benchmark(1.0);
    let li = b.table_index("Lineitem").expect("TPC-H has Lineitem");
    let schema = &b.tables()[li];
    let workload = b.table_workload(li);
    let model = HddCostModel::paper_testbed();
    let req = PartitionRequest::new(schema, &workload, &model);

    let mut capped = AdvisorSession::new(&req, Budget::deadline(Duration::ZERO));
    let early = HillClimb::new().partition_session(&mut capped).unwrap();
    let stats = capped.stats();
    assert!(stats.truncated, "zero deadline must truncate");
    assert_eq!(stats.steps, 0);
    assert_eq!(
        early,
        Partitioning::column(schema),
        "best-so-far = the seed"
    );
    assert!(Partitioning::new(schema, early.partitions().to_vec()).is_ok());

    let unlimited = HillClimb::new().partition(&req).unwrap();
    assert_ne!(
        early, unlimited,
        "the unlimited search should merge further"
    );
    assert!(req.cost(&unlimited) <= req.cost(&early));
}

#[test]
fn session_steps_interleave_with_manual_driving() {
    // The driver's primitives are usable outside the advisors: drive a
    // manual merge search and confirm telemetry adds up.
    let b = slicer::workloads::tpch::benchmark(0.1);
    let li = b.table_index("PartSupp").expect("TPC-H has PartSupp");
    let schema = &b.tables()[li];
    let workload = b.table_workload(li);
    let model = HddCostModel::paper_testbed();
    let req = PartitionRequest::new(schema, &workload, &model);
    let mut session = AdvisorSession::new(&req, Budget::UNLIMITED);
    session.seed(Partitioning::column(schema).partitions());
    let mut commits = 0u64;
    loop {
        let n = session.ev().len();
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .collect();
        match session.merge_step(&pairs) {
            SessionStep::Committed { .. } => commits += 1,
            SessionStep::NoImprovement | SessionStep::OutOfBudget => break,
        }
    }
    let stats = session.stats();
    assert_eq!(stats.steps, commits);
    assert!(stats.candidates > 0);
    assert!(!stats.truncated);
    // The manual drive is exactly HillClimb.
    assert_eq!(
        session.ev().partitioning(),
        HillClimb::new().partition(&req).unwrap()
    );
}
