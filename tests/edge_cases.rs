//! Edge cases and failure injection across the advisor surface.

use slicer::core::paper_advisors;
use slicer::prelude::*;

fn single_attr_table() -> TableSchema {
    TableSchema::builder("One", 1_000_000)
        .attr("Only", 8, AttrKind::Decimal)
        .build()
        .expect("valid")
}

#[test]
fn single_attribute_table_works_for_every_advisor() {
    let t = single_attr_table();
    let w = Workload::with_queries(&t, vec![Query::new("q", t.all_attrs())]).expect("valid");
    let m = HddCostModel::paper_testbed();
    let req = PartitionRequest::new(&t, &w, &m);
    for advisor in paper_advisors() {
        let layout = advisor
            .partition(&req)
            .unwrap_or_else(|e| panic!("{} failed: {e}", advisor.name()));
        assert_eq!(layout.len(), 1, "{}", advisor.name());
    }
}

#[test]
fn duplicate_queries_behave_like_weights() {
    // A workload with one query repeated three times must induce the same
    // layout as the same query with weight 3.
    let t = tpch::table(tpch::TpchTable::PartSupp, 1.0);
    let refs = t.attr_set(&["PartKey", "SuppKey"]).expect("attrs");
    let other = t.attr_set(&["AvailQty", "Comment"]).expect("attrs");
    let m = HddCostModel::new(DiskParams::paper_testbed().with_buffer_size(64 * 1024));

    let repeated = Workload::with_queries(
        &t,
        vec![
            Query::new("a1", refs),
            Query::new("a2", refs),
            Query::new("a3", refs),
            Query::new("b", other),
        ],
    )
    .expect("valid");
    let weighted = Workload::with_queries(
        &t,
        vec![Query::weighted("a", refs, 3.0), Query::new("b", other)],
    )
    .expect("valid");

    for advisor in paper_advisors() {
        if advisor.name() == "O2P" {
            continue; // online: arrival multiplicity legitimately matters
        }
        let l1 = advisor
            .partition(&PartitionRequest::new(&t, &repeated, &m))
            .expect("repeated");
        let l2 = advisor
            .partition(&PartitionRequest::new(&t, &weighted, &m))
            .expect("weighted");
        assert_eq!(l1, l2, "{} treats repetition ≠ weight", advisor.name());
    }
}

#[test]
fn skewed_weights_pull_the_layout() {
    // When one query dominates by weight, the brute-force layout must be at
    // least as good for it as for the light query (its referenced set ends
    // up in fewer partitions).
    let t = tpch::table(tpch::TpchTable::PartSupp, 1.0);
    let heavy = t
        .attr_set(&["PartKey", "SuppKey", "AvailQty"])
        .expect("attrs");
    let light = t.attr_set(&["SupplyCost", "Comment"]).expect("attrs");
    let m = HddCostModel::new(DiskParams::paper_testbed().with_buffer_size(64 * 1024));
    let w = Workload::with_queries(
        &t,
        vec![
            Query::weighted("heavy", heavy, 1000.0),
            Query::weighted("light", light, 1.0),
        ],
    )
    .expect("valid");
    let layout = BruteForce::exhaustive()
        .partition(&PartitionRequest::new(&t, &w, &m))
        .expect("brute force");
    assert!(
        layout.referenced_count(heavy) <= layout.referenced_count(light).max(1),
        "heavy query should touch few partitions: {}",
        layout.render(&t)
    );
}

#[test]
fn queries_touching_everything_yield_row_layout() {
    let t = tpch::table(tpch::TpchTable::Customer, 0.1);
    let w = Workload::with_queries(
        &t,
        vec![
            Query::new("q1", t.all_attrs()),
            Query::new("q2", t.all_attrs()),
        ],
    )
    .expect("valid");
    let m = HddCostModel::paper_testbed();
    let req = PartitionRequest::new(&t, &w, &m);
    for advisor in paper_advisors() {
        let layout = advisor.partition(&req).expect("runs");
        assert_eq!(
            layout.len(),
            1,
            "{} should keep the row layout",
            advisor.name()
        );
    }
}

#[test]
fn tiny_tables_fit_one_block_and_all_layouts_tie_on_scans() {
    // The paper's Figure 14(e)/(g) remark: Nation and Region fit into one
    // block, so partitioning does not influence scan volume (only seeks).
    let t = tpch::table(tpch::TpchTable::Region, 1.0);
    let m = HddCostModel::paper_testbed();
    assert_eq!(m.blocks_on_disk(t.row_count(), t.row_size()), 1);
}

#[test]
fn wide_table_only_trojan_refuses() {
    // 32-attribute table: Trojan's 2^n enumeration refuses (documented
    // bound); every other advisor still works.
    let mut b = TableSchema::builder("Wide", 10_000);
    for i in 0..32 {
        b = b.attr(format!("A{i}"), 4, AttrKind::Int);
    }
    let t = b.build().expect("valid");
    let w = Workload::with_queries(
        &t,
        vec![
            Query::new("q1", (0..8usize).collect::<AttrSet>()),
            Query::new("q2", (8..16usize).collect::<AttrSet>()),
            Query::new("q3", (4..12usize).collect::<AttrSet>()),
        ],
    )
    .expect("valid");
    let m = HddCostModel::paper_testbed();
    let req = PartitionRequest::new(&t, &w, &m);
    for advisor in paper_advisors() {
        let result = advisor.partition(&req);
        match advisor.name() {
            "Trojan" => assert!(result.is_err(), "Trojan must refuse 32 attrs"),
            _ => {
                let layout = result.unwrap_or_else(|e| panic!("{} failed: {e}", advisor.name()));
                assert!(Partitioning::new(&t, layout.partitions().to_vec()).is_ok());
            }
        }
    }
}

#[test]
fn zero_weight_query_rejected_at_construction() {
    let t = single_attr_table();
    let mut w = Workload::new();
    let err = w
        .push_validated(&t, Query::weighted("zero", t.all_attrs(), 0.0))
        .unwrap_err();
    assert!(matches!(err, ModelError::BadWeight { .. }));
}

#[test]
fn cost_model_is_scale_monotone() {
    // Doubling the table size never reduces any layout's cost.
    let small = tpch::table(tpch::TpchTable::Orders, 0.1);
    let large = small.with_row_count(small.row_count() * 2);
    let w_small = Workload::with_queries(
        &small,
        vec![Query::new(
            "q",
            small.attr_set(&["OrderKey", "TotalPrice"]).expect("attrs"),
        )],
    )
    .expect("valid");
    let m = HddCostModel::paper_testbed();
    for layout_of in [Partitioning::row, Partitioning::column] {
        let c_small = m.workload_cost(&small, &layout_of(&small), &w_small);
        let c_large = m.workload_cost(&large, &layout_of(&large), &w_small);
        assert!(c_large >= c_small);
    }
}
