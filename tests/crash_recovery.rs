//! Crash-recovery properties of the durable write path.
//!
//! The contract under test: after a crash at *any* durability boundary
//! ([`CrashPoint`]), reopening the surviving bytes yields a table whose
//! scans are bit-identical to an oracle that never crashed — acknowledged
//! ingest batches survive, an interrupted repartition either fully happened
//! or never happened, and a torn WAL tail drops exactly the un-acked
//! suffix. Crashes are injected with [`CrashDir`], which captures the
//! durable image at the armed boundary and black-holes every later write —
//! the moral equivalent of a power cut at that instant.

use proptest::prelude::*;
use slicer::model::{AttrKind, AttrSet, Partitioning, TableSchema};
use slicer::storage::{
    generate_table, scan_naive, CompressionPolicy, CrashDir, CrashPoint, Dir, FsDir, IngestBatch,
    MemDir, ScanExecutor, StoredTable, TableData,
};
use slicer_cost::DiskParams;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Deterministic splitmix-style stream over a test seed.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn random_schema(state: &mut u64) -> (TableSchema, usize) {
    let attrs = 2 + (next(state) % 5) as usize; // 2..=6
    let rows = 50 + (next(state) % 200) as usize; // 50..=249
    let mut b = TableSchema::builder("T", rows as u64);
    for i in 0..attrs {
        let (size, kind) = match next(state) % 4 {
            0 => (4, AttrKind::Int),
            1 => (8, AttrKind::Decimal),
            2 => (4, AttrKind::Date),
            _ => ((1 + next(state) % 20) as u32, AttrKind::Text),
        };
        b = b.attr(format!("A{i}"), size, kind);
    }
    (b.build().expect("valid random schema"), rows)
}

fn random_layout(state: &mut u64, schema: &TableSchema) -> Partitioning {
    let n = schema.attr_count();
    let groups = 1 + (next(state) % n as u64) as usize;
    let mut sets = vec![AttrSet::default(); groups];
    for a in 0..n {
        sets[(next(state) % groups as u64) as usize].insert(a);
    }
    sets.retain(|s| !s.is_empty());
    Partitioning::new(schema, sets).expect("random assignment covers the schema")
}

fn random_projection(state: &mut u64, schema: &TableSchema) -> AttrSet {
    let mut p = AttrSet::default();
    for a in 0..schema.attr_count() {
        if next(state) & 1 == 1 {
            p.insert(a);
        }
    }
    if p.is_empty() {
        p.insert(0usize);
    }
    p
}

/// Sorted, deduplicated delete ids below `total`, disjoint from `used`
/// (which they join). May be empty.
fn random_deletes(state: &mut u64, total: u64, used: &mut BTreeSet<u64>, max_n: u64) -> Vec<u64> {
    let want = next(state) % (max_n + 1);
    let mut ids = BTreeSet::new();
    for _ in 0..want.min(total) {
        let id = next(state) % total;
        if !used.contains(&id) {
            ids.insert(id);
        }
    }
    used.extend(ids.iter().copied());
    ids.into_iter().collect()
}

/// A random mixed batch over the current visible state: some appended rows
/// (maybe none), some deletes (maybe none), never both empty.
fn random_batch(
    state: &mut u64,
    schema: &TableSchema,
    total_rows: u64,
    used: &mut BTreeSet<u64>,
) -> IngestBatch {
    let appended = (next(state) % 40) as usize;
    let deletes = random_deletes(state, total_rows, used, 10);
    if appended == 0 && deletes.is_empty() {
        return IngestBatch::append(generate_table(schema, 5, next(state)));
    }
    IngestBatch {
        appends: (appended > 0).then(|| generate_table(schema, appended, next(state))),
        deletes,
    }
}

/// Scans of `recovered` are bit-identical to `oracle` over `projections`,
/// through both the naive oracle path and the vectorized executor.
fn assert_scans_identical(
    recovered: &StoredTable,
    oracle: &StoredTable,
    projections: &[AttrSet],
    disk: &DiskParams,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(recovered.layout(), oracle.layout());
    prop_assert_eq!(recovered.rows(), oracle.rows());
    let exec = ScanExecutor::new(recovered);
    for &p in projections {
        let r = scan_naive(recovered, p, disk);
        let o = scan_naive(oracle, p, disk);
        prop_assert_eq!(r.checksum, o.checksum, "naive checksum diverged on {}", p);
        prop_assert_eq!(r.bytes_read, o.bytes_read);
        prop_assert_eq!(r.io_seconds.to_bits(), o.io_seconds.to_bits());
        let e = exec.scan(p, disk);
        prop_assert_eq!(
            e.checksum,
            o.checksum,
            "executor checksum diverged on {}",
            p
        );
        prop_assert_eq!(e.bytes_read, o.bytes_read);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Kill the engine at every [`CrashPoint`], reopen what survived, and
    /// compare scans against a never-crashed oracle applying exactly the
    /// durable operations: batches acked into the WAL survive; an
    /// interrupted repartition is all-or-nothing at the manifest swing.
    #[test]
    fn every_crash_point_recovers_to_the_oracle(seed in any::<u64>()) {
        let mut state = seed;
        let (schema, rows) = random_schema(&mut state);
        let data = generate_table(&schema, rows, next(&mut state));
        let policy = if next(&mut state) & 1 == 0 {
            CompressionPolicy::Default
        } else {
            CompressionPolicy::Dictionary
        };
        let source = random_layout(&mut state, &schema);
        let target = random_layout(&mut state, &schema);
        let disk = DiskParams::paper_testbed();
        let projections = [
            schema.all_attrs(),
            random_projection(&mut state, &schema),
            random_projection(&mut state, &schema),
        ];
        // The same pre-crash batches drive every scenario.
        let mut used = BTreeSet::new();
        let b1 = random_batch(&mut state, &schema, rows as u64, &mut used);
        let total_after_b1 = rows as u64 + b1.appended_rows() as u64;
        let b2 = random_batch(&mut state, &schema, total_after_b1, &mut used);
        let total_after_b2 = total_after_b1 + b2.appended_rows() as u64;
        let b3 = random_batch(&mut state, &schema, total_after_b2, &mut used.clone());

        for point in CrashPoint::ALL {
            let dir = Arc::new(CrashDir::new());
            let subject = StoredTable::create(
                &schema,
                &data,
                &source,
                policy,
                dir.clone() as Arc<dyn Dir>,
            )
            .expect("create");
            subject.ingest(&b1, &disk).expect("b1");
            subject.ingest(&b2, &disk).expect("b2");
            dir.arm(point);
            match point {
                // The crash fires inside this ingest, *after* its WAL
                // append: the batch is durable and must be recovered.
                CrashPoint::AfterWalAppend => {
                    subject.ingest(&b3, &disk).expect("b3");
                }
                // The crash fires inside the delta-folding repartition.
                _ => {
                    subject.repartition(&target, &disk);
                }
            }
            prop_assert!(dir.crashed(), "{point} never fired");

            let image = Arc::new(dir.image_dir());
            let (recovered, report) =
                StoredTable::open(&schema, image.clone() as Arc<dyn Dir>).expect("open");

            // The never-crashed oracle applies exactly the durable ops.
            let oracle = StoredTable::load(&schema, &data, &source, policy);
            oracle.ingest(&b1, &disk).expect("oracle b1");
            oracle.ingest(&b2, &disk).expect("oracle b2");
            match point {
                CrashPoint::AfterWalAppend => {
                    oracle.ingest(&b3, &disk).expect("oracle b3");
                    prop_assert_eq!(report.wal_records, 3);
                    prop_assert_eq!(report.torn.clone(), None);
                }
                CrashPoint::MidFold | CrashPoint::BeforeSnapshotPublish => {
                    // Pre-move state: the manifest never swung, so the
                    // repartition never happened; partial rebuilt files
                    // are swept as orphans.
                    prop_assert_eq!(report.wal_records, 2);
                    prop_assert!(report.orphans_removed >= 1, "partial files must be swept");
                }
                CrashPoint::MidTruncate => {
                    // Post-move state: the manifest swung, the delta is
                    // folded; the superseded WAL and parts are orphans.
                    oracle.repartition(&target, &disk);
                    prop_assert_eq!(report.wal_records, 0);
                    prop_assert!(report.orphans_removed >= 1, "old WAL must be swept");
                    prop_assert!(recovered.snapshot().delta.is_empty());
                }
            }
            assert_scans_identical(&recovered, &oracle, &projections, &disk)?;

            // Life goes on after recovery: further ingest on the reopened
            // table is durable and reopens identically once more.
            recovered.ingest(&b3, &disk).ok(); // may collide with deletes; both reject
            oracle.ingest(&b3, &disk).ok();
            let (again, _) =
                StoredTable::open(&schema, image as Arc<dyn Dir>).expect("second open");
            assert_scans_identical(&again, &oracle, &projections, &disk)?;
        }
    }
}

/// The exact WAL record boundaries of `bytes`, walked by the public frame
/// layout (`[len u32][crc u32][body]`): offset *after* each record.
fn record_ends(bytes: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut off = 0usize;
    while off + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        off += 8 + len;
        ends.push(off);
    }
    assert_eq!(ends.last(), Some(&bytes.len()), "WAL ends on a boundary");
    ends
}

fn fuzz_schema() -> TableSchema {
    TableSchema::builder("T", 120)
        .attr("A", 4, AttrKind::Int)
        .attr("B", 8, AttrKind::Decimal)
        .attr("C", 9, AttrKind::Text)
        .build()
        .unwrap()
}

/// Build a durable two-batch table and return (image, wal name, oracle
/// with only batch 1, oracle with both batches).
fn torn_tail_fixture() -> (MemDir, String, StoredTable, StoredTable, TableData) {
    let schema = fuzz_schema();
    let data = generate_table(&schema, 120, 11);
    let disk = DiskParams::paper_testbed();
    let layout = Partitioning::row(&schema);
    let dir = Arc::new(MemDir::new());
    let subject = StoredTable::create(
        &schema,
        &data,
        &layout,
        CompressionPolicy::Default,
        dir.clone() as Arc<dyn Dir>,
    )
    .unwrap();
    let b1 = IngestBatch {
        appends: Some(generate_table(&schema, 17, 5)),
        deletes: vec![3, 40, 77],
    };
    let b2 = IngestBatch {
        appends: Some(generate_table(&schema, 9, 6)),
        deletes: vec![8, 120],
    };
    subject.ingest(&b1, &disk).unwrap();
    subject.ingest(&b2, &disk).unwrap();
    let oracle1 = StoredTable::load(&schema, &data, &layout, CompressionPolicy::Default);
    oracle1.ingest(&b1, &disk).unwrap();
    let oracle2 = StoredTable::load(&schema, &data, &layout, CompressionPolicy::Default);
    oracle2.ingest(&b1, &disk).unwrap();
    oracle2.ingest(&b2, &disk).unwrap();
    let wal_name = dir
        .list()
        .unwrap()
        .into_iter()
        .find(|n| n.starts_with("wal-"))
        .unwrap();
    (
        MemDir::from_image(dir.image()),
        wal_name,
        oracle1,
        oracle2,
        data,
    )
}

fn checksum_of(table: &StoredTable) -> u64 {
    let disk = DiskParams::paper_testbed();
    scan_naive(table, table.schema.all_attrs(), &disk).checksum
}

/// Truncate the WAL at *every* byte boundary of its final record: recovery
/// drops exactly the torn suffix (never a full record more, never less),
/// never panics, reports the tear, and truncates the file so the table is
/// clean on the next open.
#[test]
fn torn_tail_truncation_at_every_byte() {
    let (dir, wal_name, oracle1, oracle2, _) = torn_tail_fixture();
    let schema = fuzz_schema();
    let wal = dir.read(&wal_name).unwrap().unwrap();
    let ends = record_ends(&wal);
    assert_eq!(ends.len(), 3, "publish + two ingest records");
    let (intact, full) = (ends[1], ends[2]);
    let (sum1, sum2) = (checksum_of(&oracle1), checksum_of(&oracle2));
    assert_ne!(sum1, sum2);

    for t in intact..=full {
        let mut image = dir.image();
        image.insert(wal_name.clone(), wal[..t].to_vec());
        let torn_dir = Arc::new(MemDir::from_image(image));
        let (recovered, report) =
            StoredTable::open(&schema, torn_dir.clone() as Arc<dyn Dir>).expect("open never fails");
        if t == full {
            assert_eq!(report.torn, None);
            assert_eq!(report.wal_records, 2);
            assert_eq!(checksum_of(&recovered), sum2);
            continue;
        }
        assert_eq!(report.wal_records, 1, "only the intact batch replays");
        assert_eq!(checksum_of(&recovered), sum1);
        if t == intact {
            assert_eq!(report.torn, None, "a clean boundary is not a tear");
        } else {
            let torn = report.torn.clone().expect("mid-record cut is a tear");
            assert_eq!(torn.valid_bytes, intact, "keeps exactly the intact prefix");
            assert_eq!(torn.discarded_bytes, t - intact);
            let logged = format!("{report}");
            assert!(
                logged.contains("torn tail"),
                "report must log the tear: {logged}"
            );
            // Recovery truncated the file: the next open is clean.
            assert_eq!(torn_dir.read(&wal_name).unwrap().unwrap().len(), intact);
        }
        let (again, second) =
            StoredTable::open(&schema, torn_dir as Arc<dyn Dir>).expect("second open");
        assert_eq!(second.torn, None, "the tear was repaired on first open");
        assert_eq!(checksum_of(&again), sum1);
    }
}

/// Flip bits in every byte of the final WAL record: the CRC (or frame
/// validation) rejects the record, recovery keeps the intact prefix, and
/// nothing panics.
#[test]
fn corrupted_final_record_is_dropped_never_panics() {
    let (dir, wal_name, oracle1, _, _) = torn_tail_fixture();
    let schema = fuzz_schema();
    let wal = dir.read(&wal_name).unwrap().unwrap();
    let ends = record_ends(&wal);
    let (intact, full) = (ends[1], ends[2]);
    let sum1 = checksum_of(&oracle1);

    for idx in intact..full {
        for mask in [0x01u8, 0x80u8] {
            let mut bytes = wal.clone();
            bytes[idx] ^= mask;
            let mut image = dir.image();
            image.insert(wal_name.clone(), bytes);
            let flip_dir = Arc::new(MemDir::from_image(image));
            let (recovered, report) = StoredTable::open(&schema, flip_dir as Arc<dyn Dir>)
                .expect("a corrupt tail record must recover, not error");
            assert_eq!(report.wal_records, 1, "byte {idx} mask {mask:#x}");
            let torn = report.torn.expect("the flipped record is a tear");
            assert_eq!(torn.valid_bytes, intact);
            assert_eq!(checksum_of(&recovered), sum1);
        }
    }
}

/// The explicit repartition-mid-fold kill: a crash after some (but not
/// all) rebuilt partition files are written must leave the pre-move
/// snapshot fully intact — original layout, delta still pending — and
/// sweep the half-written files.
#[test]
fn mid_fold_kill_preserves_the_premove_snapshot() {
    let schema = fuzz_schema();
    let data = generate_table(&schema, 200, 3);
    let disk = DiskParams::paper_testbed();
    let row = Partitioning::row(&schema);
    let column = Partitioning::column(&schema);
    let dir = Arc::new(CrashDir::new());
    let subject = StoredTable::create(
        &schema,
        &data,
        &row,
        CompressionPolicy::Default,
        dir.clone() as Arc<dyn Dir>,
    )
    .unwrap();
    let batch = IngestBatch {
        appends: Some(generate_table(&schema, 25, 9)),
        deletes: vec![0, 199],
    };
    subject.ingest(&batch, &disk).unwrap();
    let pre_move = checksum_of(&subject);

    dir.arm(CrashPoint::MidFold);
    subject.repartition(&column, &disk);
    assert!(dir.crashed());
    // The live (post-crash, in-memory) table did move — but the durable
    // image must not have.
    assert_eq!(subject.layout(), column);

    let image = Arc::new(dir.image_dir());
    let (recovered, report) = StoredTable::open(&schema, image as Arc<dyn Dir>).unwrap();
    assert_eq!(recovered.layout(), row, "pre-move layout survives");
    assert!(
        !recovered.snapshot().delta.is_empty(),
        "the delta is still pending, not half-folded"
    );
    assert_eq!(checksum_of(&recovered), pre_move);
    assert!(
        report.orphans_removed >= 1,
        "the half-written rebuilt file is swept"
    );
    assert_eq!(report.wal_records, 1);
}

/// End-to-end durability through the real filesystem backend: create,
/// ingest, drop the process state, reopen from disk, fold, reopen again.
#[test]
fn fsdir_roundtrip_survives_reopen_and_fold() {
    let root = std::env::temp_dir().join(format!("slicer-crash-fs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let schema = fuzz_schema();
    let data = generate_table(&schema, 150, 21);
    let disk = DiskParams::paper_testbed();
    let sum;
    {
        let dir = Arc::new(FsDir::open(&root).unwrap());
        let t = StoredTable::create(
            &schema,
            &data,
            &Partitioning::row(&schema),
            CompressionPolicy::Default,
            dir as Arc<dyn Dir>,
        )
        .unwrap();
        t.ingest(&IngestBatch::append(generate_table(&schema, 30, 2)), &disk)
            .unwrap();
        t.ingest(&IngestBatch::delete(vec![10, 20, 160]), &disk)
            .unwrap();
        sum = checksum_of(&t);
    }
    {
        let dir = Arc::new(FsDir::open(&root).unwrap());
        let (t, report) = StoredTable::open(&schema, dir as Arc<dyn Dir>).unwrap();
        assert_eq!(report.wal_records, 2);
        assert_eq!(checksum_of(&t), sum);
        t.repartition(&Partitioning::column(&schema), &disk);
        assert_eq!(checksum_of(&t), sum);
    }
    let dir = Arc::new(FsDir::open(&root).unwrap());
    let (t, report) = StoredTable::open(&schema, dir as Arc<dyn Dir>).unwrap();
    assert_eq!(report.wal_records, 0, "the fold truncated the WAL");
    assert_eq!(t.layout(), Partitioning::column(&schema));
    assert_eq!(checksum_of(&t), sum);
    let _ = std::fs::remove_dir_all(&root);
}
