//! Replication and failover guarantees, end to end over real sockets.
//!
//! A primary streams its per-table replication log (ingest batches,
//! layout publishes, and the ingest-dedup ledger) to followers that
//! replay every record through the storage engine's normal paths. The
//! properties under test:
//!
//! * **Parity** — a synced follower's scans (pure projections and
//!   predicated alike) are bit-identical to the single-node
//!   `scan_naive` oracle, layout flips included.
//! * **Kill anywhere** — with the shipping stream cut or bit-flipped at
//!   every byte offset ([`FaultyStream`]), the follower's pump
//!   reconnects, resumes from its own log cursor, and converges; every
//!   state a scan can observe mid-replication is a *prefix* state
//!   (exactly the first k records applied), never a torn one.
//! * **Exactly-once across failover** — the dedup ledger travels with
//!   the stream, so after the primary dies (including death at every
//!   storage [`CrashPoint`]) a promoted follower answers a retried
//!   ingest sequence from the ledger instead of re-applying it.
//! * **Client failover** — a `connect_list` client retargets on
//!   `NotPrimary` (following the leader hint) and rides a dead primary
//!   over to a follower on the reconnect path.

use slicer::client::{Client, ClientConfig, ClientError};
use slicer::cost::{DiskParams, HddCostModel};
use slicer::lifecycle::{FleetConfig, TableFleet, TableManager, TableManagerConfig};
use slicer::model::{
    AttrId, AttrKind, AttrSet, Literal, Partitioning, PredClause, PredOp, Predicate, Query,
    TableSchema,
};
use slicer::net::{
    ErrorCode, Fault, FaultKind, FaultPlan, FaultyStream, Server, ServerConfig, ServerHandle,
    ServerRole, WireStream,
};
use slicer::storage::{
    generate_table, scan_naive_query_snapshot, scan_naive_snapshot, CompressionPolicy, CrashDir,
    CrashPoint, Dir, IngestBatch, StoredTable,
};
use slicer_core::HillClimb;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const ROWS: usize = 120;

fn schema() -> TableSchema {
    TableSchema::builder("alpha", ROWS as u64)
        .attr("K", 4, AttrKind::Int)
        .attr("V", 8, AttrKind::Decimal)
        .attr("C", 10, AttrKind::Text)
        .build()
        .expect("valid schema")
}

fn seed_table() -> StoredTable {
    let s = schema();
    let data = generate_table(&s, ROWS, 7);
    StoredTable::load(
        &s,
        &data,
        &Partitioning::row(&s),
        CompressionPolicy::Default,
    )
}

fn fleet_over(table: StoredTable) -> TableFleet {
    let mut fleet = TableFleet::new(FleetConfig::default());
    fleet.add_table(
        "alpha",
        TableManager::new(
            table,
            Box::new(HillClimb::new()),
            HddCostModel::paper_testbed(),
            TableManagerConfig::default(),
        ),
    );
    fleet
}

/// A fleet over the deterministic seed table — primary and follower both
/// start from this identical state, the epoch the replication log covers.
fn fleet() -> TableFleet {
    fleet_over(seed_table())
}

/// A column-grouped target layout for replicated repartitions.
fn grouped_layout() -> Partitioning {
    let s = schema();
    Partitioning::new(
        &s,
        vec![
            [0usize, 2].into_iter().collect::<AttrSet>(),
            [1usize].into_iter().collect::<AttrSet>(),
        ],
    )
    .expect("valid layout")
}

fn scan_query() -> Query {
    Query::new("q", [0usize, 1, 2].into_iter().collect::<AttrSet>())
}

fn pred_query() -> Query {
    Query::new("qp", [0usize, 1, 2].into_iter().collect::<AttrSet>()).with_predicate(
        Predicate::new(vec![
            PredClause::new(AttrId(0), PredOp::Le, Literal::int(60)),
            PredClause::new(AttrId(1), PredOp::Ge, Literal::decimal(0)),
        ])
        .with_kept_fraction(0.000001),
    )
}

fn batch(rows: usize, seed: u64) -> IngestBatch {
    IngestBatch::append(generate_table(&schema(), rows, seed))
}

/// Pure-projection naive checksum of a server's live snapshot.
fn live_checksum(handle: &ServerHandle) -> u64 {
    handle.with_fleet(|fleet| {
        let target = fleet.scan_target("alpha").expect("registered");
        scan_naive_snapshot(
            &target.table.snapshot(),
            scan_query().referenced,
            &target.disk,
        )
        .checksum
    })
}

fn live_pred_checksum(handle: &ServerHandle, q: &Query) -> u64 {
    handle.with_fleet(|fleet| {
        let target = fleet.scan_target("alpha").expect("registered");
        scan_naive_query_snapshot(&target.table.snapshot(), q, &target.disk).checksum
    })
}

fn live_generation(handle: &ServerHandle) -> u64 {
    handle.with_fleet(|fleet| {
        fleet
            .scan_target("alpha")
            .expect("registered")
            .table
            .snapshot()
            .generation
    })
}

fn delta_rows(handle: &ServerHandle) -> usize {
    handle.with_fleet(|fleet| {
        fleet
            .scan_target("alpha")
            .expect("registered")
            .table
            .snapshot()
            .delta
            .rows()
    })
}

fn log_len(handle: &ServerHandle) -> u64 {
    handle
        .repl_stats()
        .tables
        .iter()
        .find(|t| t.table == "alpha")
        .map_or(0, |t| t.log_len)
}

/// Block until the follower's log matches the primary's (it has applied
/// every shipped record), or panic after `timeout`.
fn wait_synced(primary: &ServerHandle, follower: &ServerHandle, timeout: Duration) {
    let until = Instant::now() + timeout;
    loop {
        let (p, f) = (log_len(primary), log_len(follower));
        if f >= p {
            return;
        }
        assert!(
            Instant::now() < until,
            "follower never caught up: primary log {p}, follower log {f}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Fast-cadence server config so tests converge quickly.
fn quick_cfg(role: ServerRole, follower_id: u64) -> ServerConfig {
    ServerConfig {
        role,
        follower_id,
        heartbeat_interval: Duration::from_millis(25),
        poll_interval: Duration::from_millis(5),
        frame_stall_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    }
}

fn spawn_primary() -> ServerHandle {
    Server::spawn(fleet(), quick_cfg(ServerRole::Primary, 0)).expect("bind primary")
}

fn dial(addr: SocketAddr) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(1))?;
    stream.set_nodelay(true).ok();
    Ok(stream)
}

/// A follower of `leader` whose pump dials over clean TCP.
fn spawn_clean_follower(leader: SocketAddr, id: u64) -> ServerHandle {
    Server::spawn_follower(
        fleet(),
        quick_cfg(
            ServerRole::Follower {
                leader_hint: leader.to_string(),
            },
            id,
        ),
        Box::new(move || Ok(Box::new(dial(leader)?) as Box<dyn WireStream>)),
    )
    .expect("bind follower")
}

fn retry_cfg(client_id: u64) -> ClientConfig {
    ClientConfig {
        client_id,
        max_attempts: 10,
        request_timeout: Duration::from_secs(2),
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
        ..ClientConfig::default()
    }
}

/// A synced follower serves scans bit-identical to the primary's naive
/// oracle — through wire-driven ingest (dedup ledger interleaved) and a
/// replicated layout flip — and the primary's ack bookkeeping converges
/// on the follower's applied position.
#[test]
fn follower_replays_to_oracle_parity() {
    let primary = spawn_primary();
    let follower = spawn_clean_follower(primary.addr(), 2);

    // Three wire ingests (each also ships a ledger record)...
    let mut c = Client::connect(primary.addr(), retry_cfg(11));
    for i in 0..3 {
        c.ingest("alpha", &batch(4, 900 + i)).expect("wire ingest");
    }
    // ...and a layout flip, which must replicate as a publish record.
    primary.with_fleet(|fleet| {
        let target = fleet.scan_target("alpha").expect("registered");
        target.table.repartition(&grouped_layout(), &target.disk);
    });
    // 3 ingest + 3 ledger + 1 publish.
    assert_eq!(log_len(&primary), 7, "primary log misses records");
    wait_synced(&primary, &follower, Duration::from_secs(10));

    let q = scan_query();
    let qp = pred_query();
    let want = live_checksum(&primary);
    let want_pred = live_pred_checksum(&primary, &qp);
    assert_ne!(want, want_pred, "predicate must filter rows");
    assert_eq!(live_checksum(&follower), want, "follower state diverged");
    assert_eq!(live_generation(&primary), live_generation(&follower));

    // Served over the wire, both shapes, from the follower.
    let mut cf = Client::connect(follower.addr(), retry_cfg(12));
    assert_eq!(cf.scan("alpha", &q).expect("follower scan").checksum, want);
    assert_eq!(
        cf.scan("alpha", &qp).expect("follower pred scan").checksum,
        want_pred
    );

    // The primary saw the follower's acks land at its full log.
    let stats = primary.repl_stats();
    let alpha = stats
        .tables
        .iter()
        .find(|t| t.table == "alpha")
        .expect("alpha tracked");
    assert!(
        alpha.acked.iter().any(|&(fid, seq)| fid == 2 && seq == 7),
        "primary never saw the follower's full ack: {:?}",
        alpha.acked
    );

    assert_eq!(
        follower.role(),
        ServerRole::Follower {
            leader_hint: primary.addr().to_string()
        },
        "a replica that never promoted must still report follower"
    );
    follower.shutdown();
    primary.shutdown();
}

/// Ingest against a follower is refused with a typed `NotPrimary` whose
/// message carries the leader hint verbatim.
#[test]
fn follower_rejects_ingest_with_leader_hint() {
    let primary = spawn_primary();
    let follower = spawn_clean_follower(primary.addr(), 3);
    let mut c = Client::connect(follower.addr(), retry_cfg(21));
    match c.ingest("alpha", &batch(4, 50)) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::NotPrimary);
            assert_eq!(
                message,
                primary.addr().to_string(),
                "leader hint must name the primary"
            );
        }
        other => panic!("follower accepted or mis-typed an ingest: {other:?}"),
    }
    // Scans on the follower stay allowed.
    c.scan("alpha", &scan_query()).expect("follower scan");
    follower.shutdown();
    primary.shutdown();
}

/// The tentpole sweep: the shipping stream is cut (and occasionally
/// bit-flipped) at *every byte offset* across a long schedule of
/// subscription sessions while the primary keeps ingesting. After every
/// fault the pump must reconnect and resume from its own cursor; every
/// observable follower state must be a prefix state (first k records
/// applied — never torn); and once the faults run dry the follower must
/// converge bit-identically to the oracle.
#[test]
fn shipping_survives_cuts_and_flips_at_every_byte() {
    let primary = spawn_primary();

    // Checksum after every log record so far (index = records applied).
    // Repartitions preserve content, so their entries repeat the
    // previous checksum — harmless for the membership check.
    let mut prefix = vec![live_checksum(&primary)];
    let mut feed_seed = 3000u64;
    fn feed(handle: &ServerHandle, seed: &mut u64) -> u64 {
        let b = batch(4, *seed);
        *seed += 1;
        handle.with_fleet(|fleet| {
            fleet.ingest("alpha", &b).expect("feed ingest");
            let target = fleet.scan_target("alpha").expect("registered");
            scan_naive_snapshot(
                &target.table.snapshot(),
                scan_query().referenced,
                &target.disk,
            )
            .checksum
        })
    }
    // Enough backlog that the first sessions ship real payload.
    for _ in 0..6 {
        prefix.push(feed(&primary, &mut feed_seed));
    }
    // A layout flip mid-log: publishes must survive the sweep too.
    primary.with_fleet(|fleet| {
        let target = fleet.scan_target("alpha").expect("registered");
        target.table.repartition(&grouped_layout(), &target.disk);
    });
    prefix.push(*prefix.last().expect("non-empty"));

    // The fault schedule: cut the read side at every byte of the early
    // stream (subscribe reply + first chunk), stride through the deeper
    // payload, and mix in bit-flips and write-side cuts (subscribe/ack
    // frames). Every plan must eventually strike.
    let mut plans: Vec<(String, FaultPlan)> = Vec::new();
    for at in 0..=160u64 {
        plans.push((
            format!("CutRead@{at}"),
            FaultPlan::single(Fault::new(FaultKind::CutRead, at)),
        ));
    }
    for at in (161..=1800u64).step_by(13) {
        plans.push((
            format!("CutRead@{at}"),
            FaultPlan::single(Fault::new(FaultKind::CutRead, at)),
        ));
    }
    for at in [2u64, 14, 33, 77, 200, 511] {
        plans.push((
            format!("FlipRead@{at}"),
            FaultPlan::single(Fault::new(FaultKind::FlipRead, at)),
        ));
    }
    for at in [0u64, 1, 9, 20, 33] {
        plans.push((
            format!("CutWrite@{at}"),
            FaultPlan::single(Fault::new(FaultKind::CutWrite, at)),
        ));
        plans.push((
            format!("FlipWrite@{at}"),
            FaultPlan::single(Fault::new(FaultKind::FlipWrite, at)),
        ));
    }
    let queue: Arc<Mutex<VecDeque<FaultPlan>>> =
        Arc::new(Mutex::new(plans.iter().map(|(_, p)| p.clone()).collect()));

    let leader = primary.addr();
    let dial_queue = Arc::clone(&queue);
    let follower = Server::spawn_follower(
        fleet(),
        quick_cfg(
            ServerRole::Follower {
                leader_hint: leader.to_string(),
            },
            4,
        ),
        Box::new(move || {
            let stream = dial(leader)?;
            let plan = dial_queue.lock().expect("queue lock").pop_front();
            Ok(match plan {
                Some(p) => Box::new(FaultyStream::new(stream, p)) as Box<dyn WireStream>,
                None => Box::new(stream) as Box<dyn WireStream>,
            })
        }),
    )
    .expect("bind follower");

    // While the pump fights through the schedule: keep fresh payload
    // flowing (so deep cut offsets strike data bytes, not heartbeats)
    // and assert every sampled follower state is a prefix state.
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut last_feed = Instant::now();
    loop {
        let drained = queue.lock().expect("queue lock").is_empty();
        if drained && log_len(&follower) >= log_len(&primary) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "sweep never converged: primary log {}, follower log {}, queue drained: {drained}",
            log_len(&primary),
            log_len(&follower)
        );
        let sampled = live_checksum(&follower);
        assert!(
            prefix.contains(&sampled),
            "follower served a torn state mid-replication: {sampled:#x} not a prefix checksum"
        );
        if !drained
            && last_feed.elapsed() >= Duration::from_millis(30)
            && log_len(&primary).saturating_sub(log_len(&follower)) < 3
        {
            prefix.push(feed(&primary, &mut feed_seed));
            last_feed = Instant::now();
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    // Converged: bit-identical to the single-node oracle, both shapes.
    let want = live_checksum(&primary);
    let want_pred = live_pred_checksum(&primary, &pred_query());
    assert_eq!(live_checksum(&follower), want);
    let mut cf = Client::connect(follower.addr(), retry_cfg(31));
    assert_eq!(
        cf.scan("alpha", &scan_query()).expect("scan").checksum,
        want
    );
    assert_eq!(
        cf.scan("alpha", &pred_query()).expect("pred scan").checksum,
        want_pred
    );
    // Every scheduled fault actually struck — none was wasted on a
    // session it never reached.
    for (name, plan) in &plans {
        assert!(plan.fired() >= 1, "fault {name} never struck");
    }
    follower.shutdown();
    primary.shutdown();
}

/// A follower partitioned away mid-stream serves a *consistent,
/// older-generation* snapshot — the exact prefix state it had applied —
/// not a torn one; and once the partition heals it resumes from its own
/// cursor and converges.
#[test]
fn lagging_follower_serves_consistent_older_snapshot_then_catches_up() {
    let primary = spawn_primary();
    let prefix0 = live_checksum(&primary);

    // Connection 1: cut deep enough to carry the first small batch but
    // die inside the second (large) one. Later connections: refused
    // while partitioned, clean after healing.
    let partitioned = Arc::new(AtomicBool::new(true));
    let first = Arc::new(AtomicBool::new(true));
    let leader = primary.addr();
    let gate = Arc::clone(&partitioned);
    let once = Arc::clone(&first);
    let follower = Server::spawn_follower(
        fleet(),
        quick_cfg(
            ServerRole::Follower {
                leader_hint: leader.to_string(),
            },
            5,
        ),
        Box::new(move || {
            if once.swap(false, Ordering::SeqCst) {
                let plan = FaultPlan::single(Fault::new(FaultKind::CutRead, 2_000));
                return Ok(Box::new(FaultyStream::new(dial(leader)?, plan)) as Box<dyn WireStream>);
            }
            if gate.load(Ordering::SeqCst) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    "partitioned",
                ));
            }
            Ok(Box::new(dial(leader)?) as Box<dyn WireStream>)
        }),
    )
    .expect("bind follower");

    // Small batch ships whole; the big one crosses the 2000-byte cut, so
    // its frame never completes on connection 1.
    primary.with_fleet(|fleet| {
        fleet.ingest("alpha", &batch(4, 70)).expect("b1");
    });
    wait_synced(&primary, &follower, Duration::from_secs(10));
    let prefix1 = live_checksum(&primary);
    primary.with_fleet(|fleet| {
        fleet.ingest("alpha", &batch(400, 71)).expect("b2");
    });

    // Give the cut time to strike, then hold: the lagging follower must
    // keep serving the prefix state while the primary is ahead.
    std::thread::sleep(Duration::from_millis(200));
    let sampled = live_checksum(&follower);
    assert!(
        sampled == prefix1 || sampled == prefix0,
        "partitioned follower serves a torn state: {sampled:#x}"
    );
    assert!(
        live_generation(&follower) < live_generation(&primary),
        "follower should lag the primary's generation"
    );
    let mut cf = Client::connect(follower.addr(), retry_cfg(41));
    assert_eq!(
        cf.scan("alpha", &scan_query())
            .expect("lagging scan")
            .checksum,
        sampled,
        "wire scan of the lagging follower disagrees with its snapshot"
    );

    // Heal: the pump resumes from its own cursor and converges.
    partitioned.store(false, Ordering::SeqCst);
    wait_synced(&primary, &follower, Duration::from_secs(20));
    assert_eq!(live_checksum(&follower), live_checksum(&primary));
    follower.shutdown();
    primary.shutdown();
}

/// Kill the primary at every storage [`CrashPoint`] while a follower is
/// subscribed, promote the follower, and prove: a retried ingest
/// sequence is answered from the shipped dedup ledger (applied exactly
/// once — the delta does not grow), a genuinely new batch then grows the
/// delta by exactly one batch, and scans on the promoted follower stay
/// bit-identical to a never-crashed single-node oracle.
#[test]
fn failover_applies_retried_ingest_exactly_once_at_every_crash_point() {
    let disk = DiskParams::paper_testbed();
    let s = schema();
    let data = generate_table(&s, ROWS, 7);
    let b1 = batch(4, 80);
    let b2 = batch(4, 81);
    let b3 = batch(4, 82);

    for point in CrashPoint::ALL {
        // The primary's table lives on a crash-injecting durable dir —
        // the "machine" whose death we simulate mid-shipping.
        let dir = Arc::new(CrashDir::new());
        let table = StoredTable::create(
            &s,
            &data,
            &Partitioning::row(&s),
            CompressionPolicy::Default,
            dir.clone() as Arc<dyn Dir>,
        )
        .expect("create primary table");
        let primary =
            Server::spawn(fleet_over(table), quick_cfg(ServerRole::Primary, 0)).expect("bind");
        let follower = spawn_clean_follower(primary.addr(), 6);

        // One acknowledged wire ingest before the crash (seq 1).
        let mut c1 = Client::connect(primary.addr(), retry_cfg(7));
        c1.ingest("alpha", &b1).expect("b1");
        wait_synced(&primary, &follower, Duration::from_secs(10));

        // Arm the crash and drive the op that trips it. In-memory state
        // (what replication ships) keeps going; durable state freezes —
        // exactly a machine death with the WAL caught mid-write.
        dir.arm(point);
        if point == CrashPoint::AfterWalAppend {
            c1.ingest("alpha", &b2)
                .expect("b2 (crash after WAL append)");
        } else {
            primary.with_fleet(|fleet| {
                let target = fleet.scan_target("alpha").expect("registered");
                target.table.repartition(&grouped_layout(), &target.disk);
            });
            c1.ingest("alpha", &b2).expect("b2 (post-crash)");
        }
        assert!(dir.crashed(), "{point} never fired");
        wait_synced(&primary, &follower, Duration::from_secs(10));

        // The primary dies; the follower is promoted.
        let dead_addr = primary.addr();
        primary.shutdown();
        follower.promote();
        assert_eq!(follower.role(), ServerRole::Primary);

        // The never-crashed oracle applies the same ops in log order.
        let oracle = StoredTable::load(
            &s,
            &data,
            &Partitioning::row(&s),
            CompressionPolicy::Default,
        );
        oracle.ingest(&b1, &disk).expect("oracle b1");
        if point != CrashPoint::AfterWalAppend {
            oracle.repartition(&grouped_layout(), &disk);
        }
        oracle.ingest(&b2, &disk).expect("oracle b2");

        // A client with the same identity retries both batches after the
        // failover (sequence numbers restart — the classic "did my write
        // land?" replay). The shipped ledger must answer both without
        // re-applying: the delta must not grow.
        let rows_before = delta_rows(&follower);
        let mut c2 = Client::connect_list(vec![dead_addr, follower.addr()], retry_cfg(7));
        let r1 = c2.ingest("alpha", &b1).expect("retried b1");
        assert!(r1.deduped, "{point}: retried b1 was re-applied");
        let r2 = c2.ingest("alpha", &b2).expect("retried b2");
        assert!(r2.deduped, "{point}: retried b2 was re-applied");
        assert_eq!(
            r2.rows_appended,
            b2.appended_rows() as u64,
            "{point}: the ledger's cached reply lost the batch stats"
        );
        assert_eq!(
            delta_rows(&follower),
            rows_before,
            "{point}: a retried batch grew the delta — not exactly-once"
        );

        // A genuinely new batch from a fresh identity applies exactly
        // once: the delta grows by exactly one batch.
        let mut c3 = Client::connect_list(vec![dead_addr, follower.addr()], retry_cfg(8));
        c3.ingest("alpha", &b3).expect("b3 on promoted follower");
        assert_eq!(
            delta_rows(&follower),
            rows_before + b3.appended_rows(),
            "{point}: new batch applied not-exactly-once"
        );
        oracle.ingest(&b3, &disk).expect("oracle b3");

        // And the promoted follower's scans are oracle-identical.
        let q = pred_query();
        let want = scan_naive_query_snapshot(&oracle.snapshot(), &q, &disk).checksum;
        let got = c2.scan("alpha", &q).expect("scan after failover");
        assert_eq!(got.checksum, want, "{point}: failover diverged from oracle");
        let want_pure =
            scan_naive_snapshot(&oracle.snapshot(), scan_query().referenced, &disk).checksum;
        assert_eq!(
            c2.scan("alpha", &scan_query()).expect("pure scan").checksum,
            want_pure,
            "{point}: pure projection diverged from oracle"
        );
        follower.shutdown();
    }
}

/// Client-side failover routing: a `connect_list` client bounced by
/// `NotPrimary` follows the leader hint to the real primary, and when
/// the primary's socket dies the reconnect loop lands scans (and the
/// resumed ingest sequence) on the promoted follower.
#[test]
fn client_list_retargets_on_not_primary_and_rides_out_the_kill() {
    let primary = spawn_primary();
    let follower = spawn_clean_follower(primary.addr(), 9);

    // Follower listed FIRST: the first ingest is bounced with the leader
    // hint and must retarget to the primary.
    let mut c = Client::connect_list(vec![follower.addr(), primary.addr()], retry_cfg(61));
    c.ingest("alpha", &batch(4, 90)).expect("retargeted ingest");
    let stats = c.stats();
    assert!(
        stats.not_primary >= 1,
        "NotPrimary never observed: {stats:?}"
    );
    assert!(stats.failovers >= 1, "retarget not counted: {stats:?}");
    wait_synced(&primary, &follower, Duration::from_secs(10));
    let want = live_checksum(&primary);
    assert_eq!(c.scan("alpha", &scan_query()).expect("scan").checksum, want);

    // Kill the primary; promote the follower. The same client's next
    // scan must ride the reconnect loop over to the follower and see
    // identical bytes; its next ingest sequence resumes there.
    primary.shutdown();
    follower.promote();
    let rows_before = delta_rows(&follower);
    assert_eq!(
        c.scan("alpha", &scan_query())
            .expect("scan after kill")
            .checksum,
        want,
        "failover scan diverged"
    );
    let b = batch(4, 91);
    let reply = c.ingest("alpha", &b).expect("ingest after failover");
    assert!(!reply.deduped, "a fresh sequence must not be deduped");
    assert_eq!(
        delta_rows(&follower),
        rows_before + b.appended_rows(),
        "resumed sequence applied not-exactly-once"
    );
    assert!(
        c.stats().failovers >= 2,
        "kill-driven failover not counted: {:?}",
        c.stats()
    );
    follower.shutdown();
}
