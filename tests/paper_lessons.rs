//! The paper's four lessons (Section 7), verified end to end at test
//! scale. EXPERIMENTS.md records the full-scale numbers; these tests pin
//! the *shape* so regressions in any crate surface here.

use slicer::metrics::{column_cost, row_cost, run_advisor};
use slicer::prelude::*;

fn bench() -> slicer::workloads::Benchmark {
    // First 8 queries at SF 0.1: small enough for CI, fragmented enough to
    // exhibit the lessons.
    tpch::benchmark(0.1).prefix(8)
}

/// Lesson 1: "We don't really need brute force" — HillClimb and AutoPart
/// find (essentially) the brute-force optimum orders of magnitude faster.
#[test]
fn lesson1_heuristics_match_brute_force() {
    let b = bench();
    let m = HddCostModel::paper_testbed();
    let bf = run_advisor(&BruteForce::new(), &b, &m).expect("brute force");
    let hc = run_advisor(&HillClimb::new(), &b, &m).expect("hillclimb");
    let ap = run_advisor(&AutoPart::new(), &b, &m).expect("autopart");

    let opt = bf.total_cost(&b, &m);
    assert!(
        hc.total_cost(&b, &m) <= opt * 1.01,
        "HillClimb not within 1% of optimal"
    );
    assert!(
        ap.total_cost(&b, &m) <= opt * 1.01,
        "AutoPart not within 1% of optimal"
    );
    // "Four orders of magnitude less computation": compare the candidate
    // spaces deterministically (wall-clock ratios at this tiny test scale
    // are dominated by thread fan-out noise; Figure 1 reports them at full
    // scale). HillClimb on an n-attribute table evaluates at most
    // n·(n−1)²/2 < n³ merge candidates; BruteForce enumerates Bell(#frags).
    let li = b.table_index("Lineitem").expect("lineitem");
    let schema = &b.tables()[li];
    let w = b.table_workload(li);
    let req = PartitionRequest::new(schema, &w, &m);
    let raw_space = BruteForce::exhaustive().candidate_count(&req); // B(16)
    let hillclimb_bound = (schema.attr_count() as u128).pow(3);
    assert!(
        raw_space > 1_000_000 * hillclimb_bound,
        "raw brute-force space ({raw_space}) should dwarf HillClimb's ({hillclimb_bound})"
    );
    // Even the fragment-reduced space stays well beyond HillClimb's.
    assert!(BruteForce::new().candidate_count(&req) > hillclimb_bound);
    assert!(
        hc.total_opt_time() <= bf.total_opt_time(),
        "HillClimb ({:?}) should not be slower than BruteForce ({:?})",
        hc.total_opt_time(),
        bf.total_opt_time()
    );
}

/// Lesson 2: "Watch out for the buffer size" — the buffer strongly impacts
/// workload cost, and vertical partitioning stops paying off at large
/// buffers.
#[test]
fn lesson2_buffer_size_governs_benefits() {
    let b = bench();
    let base = HddCostModel::paper_testbed();
    let run = run_advisor(&HillClimb::new(), &b, &base).expect("hillclimb");
    // (a) fragility: the same layouts get far slower at a 100× smaller
    // buffer.
    let tiny = HddCostModel::new(DiskParams::paper_testbed().with_buffer_size(80 * 1024));
    let blowup = run.total_cost(&b, &tiny) / run.total_cost(&b, &base);
    assert!(blowup > 2.0, "tiny buffer should hurt: only {blowup}×");

    // (b) sweet spot: re-optimizing at a small buffer beats Column clearly;
    // at a huge buffer the advantage (on the scan-dominated large tables)
    // evaporates.
    let small = HddCostModel::new(DiskParams::paper_testbed().with_buffer_size(256 * 1024));
    let hc_small = run_advisor(&HillClimb::new(), &b, &small)
        .expect("ok")
        .total_cost(&b, &small);
    let ratio_small = hc_small / column_cost(&b, &small);
    let huge =
        HddCostModel::new(DiskParams::paper_testbed().with_buffer_size(4 * 1024 * 1024 * 1024));
    let hc_huge = run_advisor(&HillClimb::new(), &b, &huge)
        .expect("ok")
        .total_cost(&b, &huge);
    let ratio_huge = hc_huge / column_cost(&b, &huge);
    assert!(
        ratio_small < ratio_huge + 1e-9,
        "benefit must shrink with buffer size"
    );
    assert!(
        ratio_small < 0.95,
        "vertical partitioning should pay at small buffers: {ratio_small}"
    );
}

/// Lesson 3: "HillClimb is the best algorithm" — best cost/time trade-off:
/// no other heuristic is cheaper in cost, and HillClimb stays fast.
#[test]
fn lesson3_hillclimb_best_tradeoff() {
    let b = bench();
    let m = HddCostModel::paper_testbed();
    let hc = run_advisor(&HillClimb::new(), &b, &m).expect("hillclimb");
    let hc_cost = hc.total_cost(&b, &m);
    for advisor in [
        Box::new(Navathe::new()) as Box<dyn slicer::core::Advisor>,
        Box::new(O2P::new()),
        Box::new(Hyrise::new()),
        Box::new(Trojan::new()),
    ] {
        let run = run_advisor(advisor.as_ref(), &b, &m).expect("advisor");
        assert!(
            hc_cost <= run.total_cost(&b, &m) * 1.001,
            "{} produced cheaper layouts than HillClimb",
            advisor.name()
        );
    }
}

/// Lesson 4: "Column layouts are often good enough" — on TPC-H the best
/// vertical partitioning improves over Column by only a few percent, while
/// improving over Row massively.
#[test]
fn lesson4_column_is_nearly_good_enough() {
    let b = tpch::benchmark(0.1); // all 22 queries: the fragmented workload
    let m = HddCostModel::paper_testbed();
    let hc = run_advisor(&HillClimb::new(), &b, &m).expect("hillclimb");
    let hc_cost = hc.total_cost(&b, &m);
    let col = column_cost(&b, &m);
    let row = row_cost(&b, &m);
    let improvement_over_column = (col - hc_cost) / col;
    let improvement_over_row = (row - hc_cost) / row;
    assert!(
        improvement_over_column < 0.20,
        "improvement over column should be modest: {improvement_over_column}"
    );
    assert!(
        improvement_over_row > 0.50,
        "improvement over row should be large: {improvement_over_row}"
    );
}
