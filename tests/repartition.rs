//! `StoredTable::repartition` ⇔ fresh `StoredTable::load` equivalence.
//!
//! The in-place re-slice must be indistinguishable from loading the data
//! fresh under the target layout: identical stored bytes per file, and
//! bit-identical scan results (checksum, `bytes_read`, `io_seconds`)
//! through both the naive oracle and the vectorized executor — over random
//! schemas, random source/target layouts, all three compression policies,
//! and chains of successive repartitions.

use proptest::prelude::*;
use slicer::model::{AttrKind, AttrSet, Partitioning, TableSchema};
use slicer::storage::{generate_table, scan_naive, CompressionPolicy, ScanExecutor, StoredTable};
use slicer_cost::DiskParams;

/// Deterministic splitmix-style stream over a test seed.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn random_schema(state: &mut u64) -> (TableSchema, usize) {
    let attrs = 2 + (next(state) % 6) as usize; // 2..=7
    let rows = 50 + (next(state) % 300) as usize; // 50..=349
    let mut b = TableSchema::builder("T", rows as u64);
    for i in 0..attrs {
        let (size, kind) = match next(state) % 4 {
            0 => (4, AttrKind::Int),
            1 => (8, AttrKind::Decimal),
            2 => (4, AttrKind::Date),
            _ => ((1 + next(state) % 30) as u32, AttrKind::Text),
        };
        b = b.attr(format!("A{i}"), size, kind);
    }
    (b.build().expect("valid random schema"), rows)
}

fn random_layout(state: &mut u64, schema: &TableSchema) -> Partitioning {
    let n = schema.attr_count();
    let groups = 1 + (next(state) % n as u64) as usize;
    let mut sets = vec![AttrSet::default(); groups];
    for a in 0..n {
        sets[(next(state) % groups as u64) as usize].insert(a);
    }
    sets.retain(|s| !s.is_empty());
    Partitioning::new(schema, sets).expect("random assignment covers the schema")
}

fn random_projection(state: &mut u64, schema: &TableSchema) -> AttrSet {
    let mut p = AttrSet::default();
    for a in 0..schema.attr_count() {
        if next(state) & 1 == 1 {
            p.insert(a);
        }
    }
    if p.is_empty() {
        p.insert(0usize);
    }
    p
}

fn policy(state: &mut u64) -> CompressionPolicy {
    match next(state) % 3 {
        0 => CompressionPolicy::None,
        1 => CompressionPolicy::Default,
        _ => CompressionPolicy::Dictionary,
    }
}

/// Assert `moved` (repartitioned) and `fresh` (loaded) are observationally
/// identical: stored bytes per file, plus bit-identical scans over
/// `projections` through both executors.
fn assert_tables_identical(
    moved: &StoredTable,
    fresh: &StoredTable,
    projections: &[AttrSet],
    disk: &DiskParams,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(moved.layout(), fresh.layout());
    let (moved_snap, fresh_snap) = (moved.snapshot(), fresh.snapshot());
    prop_assert_eq!(moved_snap.files.len(), fresh_snap.files.len());
    for (a, b) in moved_snap.files.iter().zip(&fresh_snap.files) {
        prop_assert_eq!(a.attrs, b.attrs);
        prop_assert_eq!(a.stored_bytes(), b.stored_bytes());
    }
    let exec_moved = ScanExecutor::new(moved);
    let exec_fresh = ScanExecutor::new(fresh);
    for &p in projections {
        let nm = scan_naive(moved, p, disk);
        let nf = scan_naive(fresh, p, disk);
        prop_assert_eq!(nm.checksum, nf.checksum, "naive checksum diverged on {}", p);
        prop_assert_eq!(nm.bytes_read, nf.bytes_read);
        prop_assert_eq!(nm.io_seconds.to_bits(), nf.io_seconds.to_bits());
        let em = exec_moved.scan(p, disk);
        let ef = exec_fresh.scan(p, disk);
        prop_assert_eq!(
            em.checksum,
            ef.checksum,
            "executor checksum diverged on {}",
            p
        );
        prop_assert_eq!(em.bytes_read, ef.bytes_read);
        prop_assert_eq!(em.io_seconds.to_bits(), ef.io_seconds.to_bits());
        prop_assert_eq!(em.checksum, nm.checksum, "executor vs naive on {}", p);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn repartition_equals_fresh_load(seed in any::<u64>()) {
        let mut state = seed;
        let (schema, rows) = random_schema(&mut state);
        let data = generate_table(&schema, rows, next(&mut state));
        let pol = policy(&mut state);
        let source = random_layout(&mut state, &schema);
        let target = random_layout(&mut state, &schema);
        let disk = DiskParams::paper_testbed();

        let moved = StoredTable::load(&schema, &data, &source, pol);
        let plan = moved.repartition_plan(&target, &disk);
        let stats = moved.repartition(&target, &disk);
        prop_assert_eq!(
            stats.files_kept + stats.files_rebuilt,
            target.len(),
            "every target partition is either kept or rebuilt"
        );
        // The dry-run plan prices the move exactly (CPU is measured, not
        // planned) — this is what lets the payoff gate consult the
        // incremental price without performing the move.
        prop_assert_eq!(plan.files_kept, stats.files_kept);
        prop_assert_eq!(plan.files_rebuilt, stats.files_rebuilt);
        prop_assert_eq!(plan.bytes_reread, stats.bytes_reread);
        prop_assert_eq!(plan.bytes_rewritten, stats.bytes_rewritten);
        prop_assert_eq!(plan.io_seconds.to_bits(), stats.io_seconds.to_bits());
        prop_assert_eq!(plan.cpu_seconds, 0.0);
        let fresh = StoredTable::load(&schema, &data, &target, pol);
        let projections: Vec<AttrSet> = (0..4)
            .map(|_| random_projection(&mut state, &schema))
            .chain([schema.all_attrs()])
            .collect();
        assert_tables_identical(&moved, &fresh, &projections, &disk)?;
    }

    #[test]
    fn repartition_chains_stay_identical(seed in any::<u64>()) {
        // Successive in-place moves (the online lifecycle's steady state)
        // must not drift from the fresh-load oracle.
        let mut state = seed;
        let (schema, rows) = random_schema(&mut state);
        let data = generate_table(&schema, rows, next(&mut state));
        let pol = policy(&mut state);
        let disk = DiskParams::paper_testbed();
        let moved = StoredTable::load(&schema, &data, &random_layout(&mut state, &schema), pol);
        for _ in 0..3 {
            let target = random_layout(&mut state, &schema);
            moved.repartition(&target, &disk);
            let fresh = StoredTable::load(&schema, &data, &target, pol);
            let projections = [random_projection(&mut state, &schema), schema.all_attrs()];
            assert_tables_identical(&moved, &fresh, &projections, &disk)?;
        }
    }
}
