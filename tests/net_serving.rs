//! End-to-end wire serving: a real TCP server over a [`TableFleet`],
//! driven by the retrying client, held to in-process oracles.
//!
//! * every scan served over the wire is bit-identical (checksum,
//!   `bytes_read`, `io_seconds`) to `scan_naive_snapshot` on the same
//!   table;
//! * ingest round-trips durably and idempotently;
//! * typed errors — unknown table, invalid query, malformed batch — come
//!   back as typed wire errors and leave the connection usable
//!   (regression for the `ModelError::UnknownTable` satellite);
//! * deadline-aware grants refuse work the disk model says cannot meet
//!   its deadline; admission control sheds with `Overloaded`;
//! * the slow-query log is exposed over the wire with correct
//!   threshold/eviction accounting;
//! * scans keep flowing (and stay correct) while the fleet lock is held
//!   by advise rounds.

use slicer::client::{Client, ClientConfig, ClientError};
use slicer::cost::HddCostModel;
use slicer::lifecycle::{FleetConfig, TableFleet, TableManager, TableManagerConfig};
use slicer::model::{AttrKind, AttrSet, Partitioning, Query, TableSchema};
use slicer::net::{ErrorCode, Request, Server, ServerConfig, ServerHandle};
use slicer::storage::{
    generate_table, scan_naive_snapshot, CompressionPolicy, IngestBatch, StoredTable,
};
use slicer_core::HillClimb;
use std::time::Duration;

fn schema(name: &str, rows: u64) -> TableSchema {
    TableSchema::builder(name, rows)
        .attr("K", 4, AttrKind::Int)
        .attr("V", 8, AttrKind::Decimal)
        .attr("D", 4, AttrKind::Date)
        .attr("C", 12, AttrKind::Text)
        .build()
        .expect("valid schema")
}

fn fleet() -> TableFleet {
    let mut fleet = TableFleet::new(FleetConfig::default());
    for (name, rows, seed) in [("alpha", 300usize, 7u64), ("beta", 180, 11)] {
        let s = schema(name, rows as u64);
        let data = generate_table(&s, rows, seed);
        let table = StoredTable::load(
            &s,
            &data,
            &Partitioning::row(&s),
            CompressionPolicy::Default,
        );
        fleet.add_table(
            name,
            TableManager::new(
                table,
                Box::new(HillClimb::new()),
                HddCostModel::paper_testbed(),
                TableManagerConfig::default(),
            ),
        );
    }
    fleet
}

fn spawn(cfg: ServerConfig) -> ServerHandle {
    Server::spawn(fleet(), cfg).expect("bind on loopback")
}

fn client(handle: &ServerHandle, cfg: ClientConfig) -> Client {
    Client::connect(handle.addr(), cfg)
}

fn query(name: &str, attrs: &[usize]) -> Query {
    Query::new(name, attrs.iter().copied().collect::<AttrSet>())
}

/// In-process oracle for `table` as the server currently stores it.
fn oracle(handle: &ServerHandle, table: &str, referenced: AttrSet) -> (u64, u64, u64) {
    handle.with_fleet(|fleet| {
        let target = fleet.scan_target(table).expect("table registered");
        let snapshot = target.table.snapshot();
        let r = scan_naive_snapshot(&snapshot, referenced, &target.disk);
        (r.checksum, r.bytes_read, snapshot.generation)
    })
}

#[test]
fn wire_scans_are_bit_identical_to_the_in_process_oracle() {
    let handle = spawn(ServerConfig::default());
    let mut c = client(&handle, ClientConfig::default());
    for (table, q) in [
        ("alpha", query("q-kv", &[0, 1])),
        ("alpha", query("q-all", &[0, 1, 2, 3])),
        ("beta", query("q-k", &[0])),
        ("beta", query("q-dc", &[2, 3])),
    ] {
        let (checksum, bytes_read, generation) = oracle(&handle, table, q.referenced);
        let reply = c.scan(table, &q).expect("scan over the wire");
        assert_eq!(reply.checksum, checksum, "{table}/{}", q.name);
        assert_eq!(reply.bytes_read, bytes_read, "{table}/{}", q.name);
        assert_eq!(reply.generation, generation);
    }
    assert_eq!(c.stats().retries, 0, "clean serving path never retries");
    let stats = handle.stats();
    assert_eq!(stats.scans_ok, 4);
    assert_eq!(stats.typed_errors, 0);
    // Serve metrics reached the fleet's window/bookkeeping.
    let fleet_queries = handle.with_fleet(|f| f.stats().queries);
    assert_eq!(fleet_queries, 4);
    handle.shutdown();
}

#[test]
fn ingest_round_trips_durably_and_scans_see_it() {
    let handle = spawn(ServerConfig::default());
    let mut c = client(&handle, ClientConfig::default());
    let s = schema("alpha", 300);
    let batch = IngestBatch {
        appends: Some(generate_table(&s, 23, 99)),
        deletes: vec![1, 250],
    };
    let reply = c.ingest("alpha", &batch).expect("ingest over the wire");
    assert_eq!(reply.rows_appended, 23);
    assert_eq!(reply.rows_deleted, 2);
    assert!(!reply.deduped);
    assert_eq!(reply.delta_rows, 23);

    // Offline oracle: same base data, same batch, in process.
    let data = generate_table(&s, 300, 7);
    let oracle_table = StoredTable::load(
        &s,
        &data,
        &Partitioning::row(&s),
        CompressionPolicy::Default,
    );
    oracle_table
        .ingest(&batch, &HddCostModel::paper_testbed().params())
        .expect("oracle ingest");
    let q = query("after-ingest", &[0, 1, 2, 3]);
    let want = scan_naive_snapshot(
        &oracle_table.snapshot(),
        q.referenced,
        &HddCostModel::paper_testbed().params(),
    );
    let got = c.scan("alpha", &q).expect("scan after ingest");
    assert_eq!(got.checksum, want.checksum, "ingest visible to scans");
    handle.shutdown();
}

#[test]
fn typed_errors_are_typed_and_the_connection_stays_usable() {
    let handle = spawn(ServerConfig::default());
    let mut c = client(&handle, ClientConfig::default());

    // Unknown table — ModelError::UnknownTable as a typed wire error.
    let err = c.scan("nope", &query("q", &[0])).unwrap_err();
    assert!(
        matches!(
            err,
            ClientError::Server {
                code: ErrorCode::UnknownTable,
                ..
            }
        ),
        "got {err:?}"
    );

    // Invalid query: attribute 200 does not exist on a 4-attribute table.
    let err = c.scan("alpha", &query("wide", &[0, 200])).unwrap_err();
    assert!(
        matches!(
            err,
            ClientError::Server {
                code: ErrorCode::InvalidQuery,
                ..
            }
        ),
        "got {err:?}"
    );

    // Schema-invalid batch (3 columns against a 4-attribute schema).
    let wrong_schema = TableSchema::builder("w", 10)
        .attr("A", 4, AttrKind::Int)
        .attr("B", 4, AttrKind::Int)
        .attr("C", 4, AttrKind::Int)
        .build()
        .unwrap();
    let bad = IngestBatch::append(generate_table(&wrong_schema, 5, 1));
    let err = c.ingest("alpha", &bad).unwrap_err();
    assert!(
        matches!(
            err,
            ClientError::Server {
                code: ErrorCode::InvalidBatch,
                ..
            }
        ),
        "got {err:?}"
    );

    // Ingest routed to an unknown table.
    let s = schema("alpha", 300);
    let ok_batch = IngestBatch::append(generate_table(&s, 3, 2));
    let err = c.ingest("missing", &ok_batch).unwrap_err();
    assert!(
        matches!(
            err,
            ClientError::Server {
                code: ErrorCode::UnknownTable,
                ..
            }
        ),
        "got {err:?}"
    );

    // None of the above were transport failures: zero retries, zero
    // reconnects — the same connection keeps serving.
    assert_eq!(c.stats().retries, 0);
    assert_eq!(c.stats().reconnects, 0);
    let q = query("still-works", &[0, 1]);
    let (want, _, _) = oracle(&handle, "alpha", q.referenced);
    assert_eq!(c.scan("alpha", &q).unwrap().checksum, want);

    // A byte-garbage batch (undecodable, not merely schema-mismatched)
    // must also answer typed and keep the connection: drive the raw
    // protocol on one stream.
    use std::io::{Read, Write};
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    raw.write_all(&slicer::net::encode_request(
        5,
        &Request::Ingest {
            table: "alpha".into(),
            client_id: 999,
            sequence: 1,
            deadline_micros: 0,
            batch: vec![0xFF; 40],
        },
    ))
    .unwrap();
    let mut fb = slicer::net::FrameBuffer::new();
    let mut buf = [0u8; 4096];
    let env = loop {
        let n = raw.read(&mut buf).unwrap();
        assert!(n > 0, "server closed instead of answering typed");
        fb.extend(&buf[..n]);
        if let Some(env) = fb.next_frame().unwrap() {
            break env;
        }
    };
    assert_eq!(env.request_id, 5);
    match env.msg {
        slicer::net::Message::Response(slicer::net::Response::Error { code, .. }) => {
            assert_eq!(code, ErrorCode::InvalidBatch)
        }
        other => panic!("expected typed InvalidBatch, got {other:?}"),
    }
    // Same raw connection still serves.
    raw.write_all(&slicer::net::encode_request(6, &Request::Stats))
        .unwrap();
    let env = loop {
        let n = raw.read(&mut buf).unwrap();
        assert!(n > 0);
        fb.extend(&buf[..n]);
        if let Some(env) = fb.next_frame().unwrap() {
            break env;
        }
    };
    assert_eq!(env.request_id, 6);
    assert!(matches!(
        env.msg,
        slicer::net::Message::Response(slicer::net::Response::StatsOk(_))
    ));
    handle.shutdown();
}

#[test]
fn deadline_aware_grants_refuse_unmeetable_work() {
    let handle = spawn(ServerConfig::default());
    // 2 ms budget: the paper-testbed disk model prices any real scan at
    // several milliseconds (one seek alone is 4.84 ms), so the grant must
    // refuse — no cycles on an answer the client would abandon.
    let mut c = client(
        &handle,
        ClientConfig {
            deadline: Some(Duration::from_millis(2)),
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            ..ClientConfig::default()
        },
    );
    let err = c.scan("alpha", &query("tight", &[0, 1, 2, 3])).unwrap_err();
    match err {
        // The usual outcome: the server's grant said no, typed.
        ClientError::Server {
            code: ErrorCode::DeadlineExceeded,
            ..
        } => {
            assert!(handle.stats().shed_deadline >= 1);
        }
        // On a slow machine the budget can die in transit — also a
        // correct deadline outcome, just client-side.
        ClientError::DeadlineExceeded { .. } => {}
        other => panic!("expected a deadline refusal, got {other:?}"),
    }
    // A client with a generous deadline is served normally (deadline is
    // propagated, not just dropped).
    let mut ok = client(
        &handle,
        ClientConfig {
            deadline: Some(Duration::from_secs(30)),
            ..ClientConfig::default()
        },
    );
    let q = query("roomy", &[0, 1]);
    let (want, _, _) = oracle(&handle, "alpha", q.referenced);
    assert_eq!(ok.scan("alpha", &q).unwrap().checksum, want);
    handle.shutdown();
}

#[test]
fn admission_control_sheds_with_overloaded_and_retry_after() {
    // A zero admission bound sheds every scan: the client must see typed
    // Overloaded frames (not hangs, not closes), honor retry_after, and
    // eventually give up cleanly.
    let handle = spawn(ServerConfig {
        admission_max_io_seconds: 0.0,
        ..ServerConfig::default()
    });
    let mut c = client(
        &handle,
        ClientConfig {
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(5),
            ..ClientConfig::default()
        },
    );
    let err = c.scan("alpha", &query("shed-me", &[0])).unwrap_err();
    match err {
        ClientError::RetriesExhausted {
            attempts,
            last_error,
        } => {
            assert_eq!(attempts, 3);
            assert!(last_error.contains("shed"), "{last_error}");
        }
        other => panic!("expected exhaustion through sheds, got {other:?}"),
    }
    assert_eq!(c.stats().overloaded, 3, "every attempt was shed, typed");
    assert_eq!(c.stats().reconnects, 0, "sheds keep the connection");
    let stats = handle.stats();
    assert_eq!(stats.shed_overload, 3);
    assert_eq!(stats.scans_ok, 0);
    // Ingest does not go through scan admission: the write path still
    // accepts work while the read path sheds.
    let s = schema("alpha", 300);
    let batch = IngestBatch::append(generate_table(&s, 4, 3));
    assert!(c.ingest("alpha", &batch).is_ok());
    handle.shutdown();
}

#[test]
fn slow_query_log_thresholds_evicts_and_travels_the_wire() {
    let handle = spawn(ServerConfig {
        // Threshold zero: every scan is "slow". Capacity two: the third
        // scan evicts the first.
        slow_query_threshold: Duration::ZERO,
        slow_log_capacity: 2,
        ..ServerConfig::default()
    });
    let mut c = client(&handle, ClientConfig::default());
    for name in ["s0", "s1", "s2"] {
        c.scan("alpha", &query(name, &[0, 1])).unwrap();
    }
    let stats = c.server_stats().expect("stats over the wire");
    assert_eq!(stats.slow_queries_recorded, 3);
    assert_eq!(stats.slow_queries_evicted, 1);
    let names: Vec<&str> = stats
        .slow_queries
        .iter()
        .map(|r| r.query.as_str())
        .collect();
    assert_eq!(names, vec!["s1", "s2"], "ring keeps the newest");
    for r in &stats.slow_queries {
        assert_eq!(r.table, "alpha");
        assert!(r.bytes_read > 0);
        assert!(r.deadline_slack_micros.is_none());
    }
    handle.shutdown();
}

#[test]
fn scans_keep_flowing_while_advise_rounds_hold_the_fleet_lock() {
    let handle = spawn(ServerConfig::default());
    let q = query("under-pressure", &[0, 1, 2]);
    let (want, _, _) = oracle(&handle, "alpha", q.referenced);
    let addr = handle.addr();
    std::thread::scope(|s| {
        let scanner = s.spawn(move || {
            let mut c = Client::connect(addr, ClientConfig::default());
            for _ in 0..40 {
                let reply = c.scan("alpha", &q).expect("scan during advise pressure");
                assert_eq!(reply.checksum, want, "scan correct under advise pressure");
            }
            c.stats()
        });
        // Hammer the fleet lock from the control plane the whole time.
        for _ in 0..10 {
            handle.with_fleet(|fleet| {
                fleet.advise_round();
            });
        }
        let stats = scanner.join().expect("scanner thread");
        assert_eq!(stats.retries, 0, "scans never waited on the fleet lock");
    });
    let fleet = handle.shutdown();
    // Every served scan was folded into the fleet's bookkeeping.
    assert_eq!(fleet.stats().queries, 40);
}

#[test]
fn shutdown_returns_the_fleet_ready_to_be_served_again() {
    let handle = spawn(ServerConfig::default());
    let mut c = client(&handle, ClientConfig::default());
    let q = query("before", &[0, 1]);
    let first = c.scan("alpha", &q).unwrap();
    let fleet = handle.shutdown();
    // Re-serve the SAME fleet on a fresh port; data and bookkeeping are
    // intact.
    let handle2 = Server::spawn(fleet, ServerConfig::default()).unwrap();
    let mut c2 = client(&handle2, ClientConfig::default());
    let again = c2.scan("alpha", &q).unwrap();
    assert_eq!(again.checksum, first.checksum);
    let fleet = handle2.shutdown();
    assert_eq!(fleet.stats().queries, 2);
}
