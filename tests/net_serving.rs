//! End-to-end wire serving: a real TCP server over a [`TableFleet`],
//! driven by the retrying client, held to in-process oracles.
//!
//! * every scan served over the wire is bit-identical (checksum,
//!   `bytes_read`, `io_seconds`) to `scan_naive_snapshot` on the same
//!   table;
//! * ingest round-trips durably and idempotently;
//! * typed errors — unknown table, invalid query, malformed batch — come
//!   back as typed wire errors and leave the connection usable
//!   (regression for the `ModelError::UnknownTable` satellite);
//! * deadline-aware grants refuse work the disk model says cannot meet
//!   its deadline; admission control sheds with `Overloaded`;
//! * the slow-query log is exposed over the wire with correct
//!   threshold/eviction accounting;
//! * scans keep flowing (and stay correct) while the fleet lock is held
//!   by advise rounds.

use slicer::client::{Client, ClientConfig, ClientError};
use slicer::cost::{CostModel, HddCostModel};
use slicer::lifecycle::{FleetConfig, TableFleet, TableManager, TableManagerConfig};
use slicer::model::{
    AttrId, AttrKind, AttrSet, Literal, Partitioning, PredClause, PredOp, Predicate, Query,
    TableSchema,
};
use slicer::net::{ErrorCode, Request, Server, ServerConfig, ServerHandle};
use slicer::storage::{
    generate_table, scan_naive_query_snapshot, scan_naive_snapshot, CompressionPolicy, IngestBatch,
    StoredTable,
};
use slicer_core::HillClimb;
use std::time::Duration;

fn schema(name: &str, rows: u64) -> TableSchema {
    TableSchema::builder(name, rows)
        .attr("K", 4, AttrKind::Int)
        .attr("V", 8, AttrKind::Decimal)
        .attr("D", 4, AttrKind::Date)
        .attr("C", 12, AttrKind::Text)
        .build()
        .expect("valid schema")
}

fn fleet() -> TableFleet {
    let mut fleet = TableFleet::new(FleetConfig::default());
    for (name, rows, seed) in [("alpha", 300usize, 7u64), ("beta", 180, 11)] {
        let s = schema(name, rows as u64);
        let data = generate_table(&s, rows, seed);
        let table = StoredTable::load(
            &s,
            &data,
            &Partitioning::row(&s),
            CompressionPolicy::Default,
        );
        fleet.add_table(
            name,
            TableManager::new(
                table,
                Box::new(HillClimb::new()),
                HddCostModel::paper_testbed(),
                TableManagerConfig::default(),
            ),
        );
    }
    fleet
}

fn spawn(cfg: ServerConfig) -> ServerHandle {
    Server::spawn(fleet(), cfg).expect("bind on loopback")
}

/// Enough rows for sixty 2048-row pruning chunks, with the date column
/// `D` isolated in its own partition file — the generator's dates trend
/// upward with the row index, so a low date cutoff prunes all but the
/// first couple of chunks.
const PRUNE_ROWS: usize = 122_880;

fn pruning_fleet() -> TableFleet {
    let s = schema("events", PRUNE_ROWS as u64);
    let data = generate_table(&s, PRUNE_ROWS, 13);
    let isolating = Partitioning::new(
        &s,
        vec![
            s.attr_set(&["D"]).unwrap(),
            s.attr_set(&["K", "V", "C"]).unwrap(),
        ],
    )
    .unwrap();
    // Fixed-width storage (the paper's dictionary policy): byte skipping
    // needs individually addressable rows, so the non-driver group can
    // fetch only kept chunks. Variable-width codecs would force a full
    // read of every touched file and hide the pruning win.
    let table = StoredTable::load(&s, &data, &isolating, CompressionPolicy::Dictionary);
    let mut fleet = TableFleet::new(FleetConfig::default());
    fleet.add_table(
        "events",
        TableManager::new(
            table,
            Box::new(HillClimb::new()),
            HddCostModel::paper_testbed(),
            TableManagerConfig::default(),
        ),
    );
    fleet
}

/// A full projection of `events` filtered to the earliest dates. The
/// carried `kept_fraction` stays at the conservative 1.0 default — the
/// server must measure the real fraction itself.
fn early_dates_query() -> Query {
    Query::new("early", [0usize, 1, 2, 3].into_iter().collect::<AttrSet>()).with_predicate(
        Predicate::new(vec![PredClause::new(
            AttrId(2),
            PredOp::Le,
            Literal::date(25),
        )]),
    )
}

fn client(handle: &ServerHandle, cfg: ClientConfig) -> Client {
    Client::connect(handle.addr(), cfg)
}

fn query(name: &str, attrs: &[usize]) -> Query {
    Query::new(name, attrs.iter().copied().collect::<AttrSet>())
}

/// In-process oracle for `table` as the server currently stores it.
fn oracle(handle: &ServerHandle, table: &str, referenced: AttrSet) -> (u64, u64, u64) {
    handle.with_fleet(|fleet| {
        let target = fleet.scan_target(table).expect("table registered");
        let snapshot = target.table.snapshot();
        let r = scan_naive_snapshot(&snapshot, referenced, &target.disk);
        (r.checksum, r.bytes_read, snapshot.generation)
    })
}

#[test]
fn wire_scans_are_bit_identical_to_the_in_process_oracle() {
    let handle = spawn(ServerConfig::default());
    let mut c = client(&handle, ClientConfig::default());
    for (table, q) in [
        ("alpha", query("q-kv", &[0, 1])),
        ("alpha", query("q-all", &[0, 1, 2, 3])),
        ("beta", query("q-k", &[0])),
        ("beta", query("q-dc", &[2, 3])),
    ] {
        let (checksum, bytes_read, generation) = oracle(&handle, table, q.referenced);
        let reply = c.scan(table, &q).expect("scan over the wire");
        assert_eq!(reply.checksum, checksum, "{table}/{}", q.name);
        assert_eq!(reply.bytes_read, bytes_read, "{table}/{}", q.name);
        assert_eq!(reply.generation, generation);
    }
    assert_eq!(c.stats().retries, 0, "clean serving path never retries");
    let stats = handle.stats();
    assert_eq!(stats.scans_ok, 4);
    assert_eq!(stats.typed_errors, 0);
    // Serve metrics reached the fleet's window/bookkeeping.
    let fleet_queries = handle.with_fleet(|f| f.stats().queries);
    assert_eq!(fleet_queries, 4);
    handle.shutdown();
}

#[test]
fn ingest_round_trips_durably_and_scans_see_it() {
    let handle = spawn(ServerConfig::default());
    let mut c = client(&handle, ClientConfig::default());
    let s = schema("alpha", 300);
    let batch = IngestBatch {
        appends: Some(generate_table(&s, 23, 99)),
        deletes: vec![1, 250],
    };
    let reply = c.ingest("alpha", &batch).expect("ingest over the wire");
    assert_eq!(reply.rows_appended, 23);
    assert_eq!(reply.rows_deleted, 2);
    assert!(!reply.deduped);
    assert_eq!(reply.delta_rows, 23);

    // Offline oracle: same base data, same batch, in process.
    let data = generate_table(&s, 300, 7);
    let oracle_table = StoredTable::load(
        &s,
        &data,
        &Partitioning::row(&s),
        CompressionPolicy::Default,
    );
    oracle_table
        .ingest(&batch, &HddCostModel::paper_testbed().params())
        .expect("oracle ingest");
    let q = query("after-ingest", &[0, 1, 2, 3]);
    let want = scan_naive_snapshot(
        &oracle_table.snapshot(),
        q.referenced,
        &HddCostModel::paper_testbed().params(),
    );
    let got = c.scan("alpha", &q).expect("scan after ingest");
    assert_eq!(got.checksum, want.checksum, "ingest visible to scans");
    handle.shutdown();
}

#[test]
fn typed_errors_are_typed_and_the_connection_stays_usable() {
    let handle = spawn(ServerConfig::default());
    let mut c = client(&handle, ClientConfig::default());

    // Unknown table — ModelError::UnknownTable as a typed wire error.
    let err = c.scan("nope", &query("q", &[0])).unwrap_err();
    assert!(
        matches!(
            err,
            ClientError::Server {
                code: ErrorCode::UnknownTable,
                ..
            }
        ),
        "got {err:?}"
    );

    // Invalid query: attribute 200 does not exist on a 4-attribute table.
    let err = c.scan("alpha", &query("wide", &[0, 200])).unwrap_err();
    assert!(
        matches!(
            err,
            ClientError::Server {
                code: ErrorCode::InvalidQuery,
                ..
            }
        ),
        "got {err:?}"
    );

    // Schema-invalid batch (3 columns against a 4-attribute schema).
    let wrong_schema = TableSchema::builder("w", 10)
        .attr("A", 4, AttrKind::Int)
        .attr("B", 4, AttrKind::Int)
        .attr("C", 4, AttrKind::Int)
        .build()
        .unwrap();
    let bad = IngestBatch::append(generate_table(&wrong_schema, 5, 1));
    let err = c.ingest("alpha", &bad).unwrap_err();
    assert!(
        matches!(
            err,
            ClientError::Server {
                code: ErrorCode::InvalidBatch,
                ..
            }
        ),
        "got {err:?}"
    );

    // Ingest routed to an unknown table.
    let s = schema("alpha", 300);
    let ok_batch = IngestBatch::append(generate_table(&s, 3, 2));
    let err = c.ingest("missing", &ok_batch).unwrap_err();
    assert!(
        matches!(
            err,
            ClientError::Server {
                code: ErrorCode::UnknownTable,
                ..
            }
        ),
        "got {err:?}"
    );

    // None of the above were transport failures: zero retries, zero
    // reconnects — the same connection keeps serving.
    assert_eq!(c.stats().retries, 0);
    assert_eq!(c.stats().reconnects, 0);
    let q = query("still-works", &[0, 1]);
    let (want, _, _) = oracle(&handle, "alpha", q.referenced);
    assert_eq!(c.scan("alpha", &q).unwrap().checksum, want);

    // A byte-garbage batch (undecodable, not merely schema-mismatched)
    // must also answer typed and keep the connection: drive the raw
    // protocol on one stream.
    use std::io::{Read, Write};
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    raw.write_all(&slicer::net::encode_request(
        5,
        &Request::Ingest {
            table: "alpha".into(),
            client_id: 999,
            sequence: 1,
            deadline_micros: 0,
            batch: vec![0xFF; 40],
        },
    ))
    .unwrap();
    let mut fb = slicer::net::FrameBuffer::new();
    let mut buf = [0u8; 4096];
    let env = loop {
        let n = raw.read(&mut buf).unwrap();
        assert!(n > 0, "server closed instead of answering typed");
        fb.extend(&buf[..n]);
        if let Some(env) = fb.next_frame().unwrap() {
            break env;
        }
    };
    assert_eq!(env.request_id, 5);
    match env.msg {
        slicer::net::Message::Response(slicer::net::Response::Error { code, .. }) => {
            assert_eq!(code, ErrorCode::InvalidBatch)
        }
        other => panic!("expected typed InvalidBatch, got {other:?}"),
    }
    // Same raw connection still serves.
    raw.write_all(&slicer::net::encode_request(6, &Request::Stats))
        .unwrap();
    let env = loop {
        let n = raw.read(&mut buf).unwrap();
        assert!(n > 0);
        fb.extend(&buf[..n]);
        if let Some(env) = fb.next_frame().unwrap() {
            break env;
        }
    };
    assert_eq!(env.request_id, 6);
    assert!(matches!(
        env.msg,
        slicer::net::Message::Response(slicer::net::Response::StatsOk(_))
    ));
    handle.shutdown();
}

#[test]
fn predicated_wire_scans_prune_bytes_and_match_the_query_oracle() {
    let handle = Server::spawn(pruning_fleet(), ServerConfig::default()).expect("bind");
    let q = early_dates_query();
    // Predicate-filtered naive oracle (reads unpruned bytes) on the
    // server's own snapshot: result bytes must be bit-identical.
    let (want_checksum, unpruned_bytes) = handle.with_fleet(|fleet| {
        let target = fleet.scan_target("events").expect("registered");
        let r = scan_naive_query_snapshot(&target.table.snapshot(), &q, &target.disk);
        (r.checksum, r.bytes_read)
    });
    let mut c = client(&handle, ClientConfig::default());
    let reply = c.scan("events", &q).expect("predicated scan over the wire");
    assert_eq!(
        reply.checksum, want_checksum,
        "wire result diverges from oracle"
    );
    // The wire path actually pruned: fewer bytes than the unpruned
    // predicate oracle, and a server-stamped fraction well under 1.
    assert!(
        reply.bytes_read < unpruned_bytes,
        "wire scan read {} B, oracle {} B — predicate was dropped on the wire",
        reply.bytes_read,
        unpruned_bytes
    );
    assert!(
        reply.kept_fraction < 0.5,
        "kept_fraction {} — server did not re-stamp from its pruning metadata",
        reply.kept_fraction
    );
    assert!(reply.kept_fraction > 0.0);
    // The predicated scan reached the fleet's serve window like any
    // in-process query.
    assert_eq!(handle.with_fleet(|f| f.stats().queries), 1);
    handle.shutdown();
}

#[test]
fn admission_prices_selective_queries_on_their_pruned_cost() {
    // Compute the full-scan and pruned modeled costs up front, then pick
    // an admission bound strictly between them: a skip-blind controller
    // would shed BOTH queries; the skip-aware one must admit the
    // selective query and shed only the bare projection.
    let fleet = pruning_fleet();
    let bare = Query::new("bare", [0usize, 1, 2, 3].into_iter().collect::<AttrSet>());
    let pred = early_dates_query();
    let model = HddCostModel::paper_testbed();
    let (full_cost, pruned_cost) = {
        let target = fleet.scan_target("events").expect("registered");
        let snapshot = target.table.snapshot();
        let full = model.query_cost(&target.table.schema, &snapshot.layout, &bare);
        let kept = snapshot.prune_fraction(pred.predicate.as_ref().unwrap());
        let stamped = bare
            .clone()
            .with_predicate(pred.predicate.clone().unwrap().with_kept_fraction(kept));
        let pruned = model.query_cost(&target.table.schema, &snapshot.layout, &stamped);
        (full, pruned)
    };
    assert!(
        pruned_cost < full_cost / 2.0,
        "pruning must change the modeled cost materially (full {full_cost}, pruned {pruned_cost})"
    );
    let handle = Server::spawn(
        fleet,
        ServerConfig {
            admission_max_io_seconds: (pruned_cost + full_cost) / 2.0,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut c = client(
        &handle,
        ClientConfig {
            max_attempts: 2,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            ..ClientConfig::default()
        },
    );
    // The skip-blind bound sheds the bare projection…
    let err = c.scan("events", &bare).unwrap_err();
    assert!(
        matches!(err, ClientError::RetriesExhausted { ref last_error, .. } if last_error.contains("shed")),
        "bare projection should be shed: {err:?}"
    );
    // …but the selective query, priced on its pruned cost, is admitted.
    let reply = c
        .scan("events", &pred)
        .expect("selective query must be admitted on its pruned cost");
    assert!(reply.kept_fraction < 0.5);
    let stats = handle.stats();
    assert!(stats.shed_overload >= 1);
    assert_eq!(stats.scans_ok, 1);
    handle.shutdown();
}

#[test]
fn non_finite_and_negative_weights_are_typed_and_keep_the_connection() {
    // Raw-socket regression for the frame doc's "weight validated
    // server-side" claim: NaN, infinite, and negative weights must come
    // back as typed InvalidQuery frames — not a panic, not a free-of-cost
    // admission — and the same connection must keep serving.
    use std::io::{Read, Write};
    let handle = spawn(ServerConfig::default());
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    let mut fb = slicer::net::FrameBuffer::new();
    let mut buf = [0u8; 4096];
    let mut roundtrip = |raw: &mut std::net::TcpStream,
                         fb: &mut slicer::net::FrameBuffer,
                         id: u64,
                         req: &Request|
     -> slicer::net::Envelope {
        raw.write_all(&slicer::net::encode_request(id, req))
            .unwrap();
        loop {
            let n = raw.read(&mut buf).unwrap();
            assert!(n > 0, "server closed instead of answering typed");
            fb.extend(&buf[..n]);
            if let Some(env) = fb.next_frame().unwrap() {
                break env;
            }
        }
    };
    for (id, weight) in [
        (1u64, f64::NAN),
        (2, f64::INFINITY),
        (3, f64::NEG_INFINITY),
        (4, -1.0),
        (5, 0.0),
    ] {
        let env = roundtrip(
            &mut raw,
            &mut fb,
            id,
            &Request::Scan {
                table: "alpha".into(),
                query_name: "bad-weight".into(),
                weight,
                attrs: vec![0, 1],
                predicate: None,
                deadline_micros: 0,
            },
        );
        assert_eq!(env.request_id, id);
        match env.msg {
            slicer::net::Message::Response(slicer::net::Response::Error { code, .. }) => {
                assert_eq!(code, ErrorCode::InvalidQuery, "weight {weight}")
            }
            other => panic!("weight {weight}: expected typed InvalidQuery, got {other:?}"),
        }
    }
    // Same connection, now a well-formed scan: still served.
    let env = roundtrip(
        &mut raw,
        &mut fb,
        9,
        &Request::Scan {
            table: "alpha".into(),
            query_name: "fine".into(),
            weight: 1.0,
            attrs: vec![0, 1],
            predicate: None,
            deadline_micros: 0,
        },
    );
    assert_eq!(env.request_id, 9);
    assert!(matches!(
        env.msg,
        slicer::net::Message::Response(slicer::net::Response::ScanOk { .. })
    ));
    assert_eq!(handle.stats().scans_ok, 1);
    handle.shutdown();
}

#[test]
fn deadline_aware_grants_refuse_unmeetable_work() {
    let handle = spawn(ServerConfig::default());
    // 2 ms budget: the paper-testbed disk model prices any real scan at
    // several milliseconds (one seek alone is 4.84 ms), so the grant must
    // refuse — no cycles on an answer the client would abandon.
    let mut c = client(
        &handle,
        ClientConfig {
            deadline: Some(Duration::from_millis(2)),
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            ..ClientConfig::default()
        },
    );
    let err = c.scan("alpha", &query("tight", &[0, 1, 2, 3])).unwrap_err();
    match err {
        // The usual outcome: the server's grant said no, typed.
        ClientError::Server {
            code: ErrorCode::DeadlineExceeded,
            ..
        } => {
            assert!(handle.stats().shed_deadline >= 1);
        }
        // On a slow machine the budget can die in transit — also a
        // correct deadline outcome, just client-side.
        ClientError::DeadlineExceeded { .. } => {}
        other => panic!("expected a deadline refusal, got {other:?}"),
    }
    // A client with a generous deadline is served normally (deadline is
    // propagated, not just dropped).
    let mut ok = client(
        &handle,
        ClientConfig {
            deadline: Some(Duration::from_secs(30)),
            ..ClientConfig::default()
        },
    );
    let q = query("roomy", &[0, 1]);
    let (want, _, _) = oracle(&handle, "alpha", q.referenced);
    assert_eq!(ok.scan("alpha", &q).unwrap().checksum, want);
    handle.shutdown();
}

#[test]
fn admission_control_sheds_with_overloaded_and_retry_after() {
    // A zero admission bound sheds every scan: the client must see typed
    // Overloaded frames (not hangs, not closes), honor retry_after, and
    // eventually give up cleanly.
    let handle = spawn(ServerConfig {
        admission_max_io_seconds: 0.0,
        ..ServerConfig::default()
    });
    let mut c = client(
        &handle,
        ClientConfig {
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(5),
            ..ClientConfig::default()
        },
    );
    let err = c.scan("alpha", &query("shed-me", &[0])).unwrap_err();
    match err {
        ClientError::RetriesExhausted {
            attempts,
            last_error,
        } => {
            assert_eq!(attempts, 3);
            assert!(last_error.contains("shed"), "{last_error}");
        }
        other => panic!("expected exhaustion through sheds, got {other:?}"),
    }
    assert_eq!(c.stats().overloaded, 3, "every attempt was shed, typed");
    assert_eq!(c.stats().reconnects, 0, "sheds keep the connection");
    let stats = handle.stats();
    assert_eq!(stats.shed_overload, 3);
    assert_eq!(stats.scans_ok, 0);
    // Ingest does not go through scan admission: the write path still
    // accepts work while the read path sheds.
    let s = schema("alpha", 300);
    let batch = IngestBatch::append(generate_table(&s, 4, 3));
    assert!(c.ingest("alpha", &batch).is_ok());
    handle.shutdown();
}

#[test]
fn slow_query_log_thresholds_evicts_and_travels_the_wire() {
    let handle = spawn(ServerConfig {
        // Threshold zero: every scan is "slow". Capacity two: the third
        // scan evicts the first.
        slow_query_threshold: Duration::ZERO,
        slow_log_capacity: 2,
        ..ServerConfig::default()
    });
    let mut c = client(&handle, ClientConfig::default());
    for name in ["s0", "s1"] {
        c.scan("alpha", &query(name, &[0, 1])).unwrap();
    }
    // A predicated scan: its record must carry the server-stamped
    // fraction so a post-mortem can tell "selective but mispriced" from
    // "genuinely big".
    let pred = query("s2-pred", &[0, 1]).with_predicate(
        Predicate::new(vec![PredClause::new(
            AttrId(0),
            PredOp::Le,
            Literal::int(150),
        )])
        .with_kept_fraction(0.25),
    );
    let reply = c.scan("alpha", &pred).unwrap();
    let stats = c.server_stats().expect("stats over the wire");
    assert_eq!(stats.slow_queries_recorded, 3);
    assert_eq!(stats.slow_queries_evicted, 1);
    let names: Vec<&str> = stats
        .slow_queries
        .iter()
        .map(|r| r.query.as_str())
        .collect();
    assert_eq!(names, vec!["s1", "s2-pred"], "ring keeps the newest");
    for r in &stats.slow_queries {
        assert_eq!(r.table, "alpha");
        assert!(r.bytes_read > 0);
        assert!(r.deadline_slack_micros.is_none());
        match r.query.as_str() {
            // The server-stamped fraction — NOT the client's 0.25
            // estimate — travels in the record.
            "s2-pred" => assert_eq!(r.kept_fraction, Some(reply.kept_fraction)),
            _ => assert_eq!(r.kept_fraction, None),
        }
    }
    handle.shutdown();
}

#[test]
fn scans_keep_flowing_while_advise_rounds_hold_the_fleet_lock() {
    let handle = spawn(ServerConfig::default());
    let q = query("under-pressure", &[0, 1, 2]);
    let (want, _, _) = oracle(&handle, "alpha", q.referenced);
    let addr = handle.addr();
    std::thread::scope(|s| {
        let scanner = s.spawn(move || {
            let mut c = Client::connect(addr, ClientConfig::default());
            for _ in 0..40 {
                let reply = c.scan("alpha", &q).expect("scan during advise pressure");
                assert_eq!(reply.checksum, want, "scan correct under advise pressure");
            }
            c.stats()
        });
        // Hammer the fleet lock from the control plane the whole time.
        for _ in 0..10 {
            handle.with_fleet(|fleet| {
                fleet.advise_round();
            });
        }
        let stats = scanner.join().expect("scanner thread");
        assert_eq!(stats.retries, 0, "scans never waited on the fleet lock");
    });
    let fleet = handle.shutdown();
    // Every served scan was folded into the fleet's bookkeeping.
    assert_eq!(fleet.stats().queries, 40);
}

#[test]
fn shutdown_returns_the_fleet_ready_to_be_served_again() {
    let handle = spawn(ServerConfig::default());
    let mut c = client(&handle, ClientConfig::default());
    let q = query("before", &[0, 1]);
    let first = c.scan("alpha", &q).unwrap();
    let fleet = handle.shutdown();
    // Re-serve the SAME fleet on a fresh port; data and bookkeeping are
    // intact.
    let handle2 = Server::spawn(fleet, ServerConfig::default()).unwrap();
    let mut c2 = client(&handle2, ClientConfig::default());
    let again = c2.scan("alpha", &q).unwrap();
    assert_eq!(again.checksum, first.checksum);
    let fleet = handle2.shutdown();
    assert_eq!(fleet.stats().queries, 2);
}
