//! Concurrent serving under the knife: many scans racing live
//! re-partitions.
//!
//! The snapshot read path's contract, stress- and property-tested:
//!
//! * a scan pins one [`TableSnapshot`] and is bit-identical to the
//!   `scan_naive` oracle *on that same pinned snapshot* — checksum,
//!   `bytes_read`, `io_seconds` — no matter how many re-partitions are
//!   published while it runs;
//! * no scan ever observes a half-moved layout: every scan's `bytes_read`
//!   equals what one of the published layouts (old or new) reads for that
//!   projection, never a mixture;
//! * scans never block on a move — they only ever see the snapshot
//!   current at their start;
//! * warm per-thread scratch never aliases: interleaved warm scans of
//!   different projections from concurrent threads are bit-identical to
//!   cold scans.

use proptest::prelude::*;
use slicer::model::{AttrKind, AttrSet, Partitioning, TableSchema};
use slicer::storage::{
    generate_table, scan_naive, scan_naive_snapshot, CacheMode, CompressionPolicy, ScanExecutor,
    StoredTable,
};
use slicer_cost::DiskParams;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

/// Deterministic splitmix-style stream over a test seed.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn random_schema(state: &mut u64) -> (TableSchema, usize) {
    let attrs = 3 + (next(state) % 5) as usize; // 3..=7
    let rows = 200 + (next(state) % 400) as usize;
    let mut b = TableSchema::builder("T", rows as u64);
    for i in 0..attrs {
        let (size, kind) = match next(state) % 4 {
            0 => (4, AttrKind::Int),
            1 => (8, AttrKind::Decimal),
            2 => (4, AttrKind::Date),
            _ => ((1 + next(state) % 24) as u32, AttrKind::Text),
        };
        b = b.attr(format!("A{i}"), size, kind);
    }
    (b.build().expect("valid random schema"), rows)
}

fn random_layout(state: &mut u64, schema: &TableSchema) -> Partitioning {
    let n = schema.attr_count();
    let groups = 1 + (next(state) % n as u64) as usize;
    let mut sets = vec![AttrSet::default(); groups];
    for a in 0..n {
        sets[(next(state) % groups as u64) as usize].insert(a);
    }
    sets.retain(|s| !s.is_empty());
    Partitioning::new(schema, sets).expect("random assignment covers the schema")
}

fn random_projection(state: &mut u64, schema: &TableSchema) -> AttrSet {
    let mut p = AttrSet::default();
    for a in 0..schema.attr_count() {
        if next(state) & 1 == 1 {
            p.insert(a);
        }
    }
    if p.is_empty() {
        p.insert(0usize);
    }
    p
}

/// The core race: `readers` threads scanning through one shared executor
/// while a writer thread keeps flipping the table between two layouts.
/// Every scan is held to the `scan_naive` oracle on its own pinned
/// snapshot; returns the set of generations the readers observed.
fn race(
    table: &Arc<StoredTable>,
    layouts: [&Partitioning; 2],
    projections: &[AttrSet],
    policy_tag: &str,
    readers: usize,
    scans_per_reader: usize,
    flips: usize,
) -> HashSet<u64> {
    let disk = DiskParams::paper_testbed();
    // Projection checksums are layout-independent: one oracle pass under
    // the starting snapshot prices every future snapshot too.
    let start_snapshot = table.snapshot();
    let checksum_oracle: Vec<u64> = projections
        .iter()
        .map(|&p| scan_naive_snapshot(&start_snapshot, p, &disk).checksum)
        .collect();
    // Per-layout bytes_read: the only values an atomic snapshot can read.
    let bytes_oracle: Vec<[u64; 2]> = {
        let probes = layouts.map(|l| {
            StoredTable::load(
                &table.schema,
                // Rebuild from the table's own data via repartitioned
                // clone: a fresh load of the same source.
                &probe_data(table),
                l,
                table.policy,
            )
        });
        projections
            .iter()
            .map(|&p| {
                [
                    scan_naive(&probes[0], p, &disk).bytes_read,
                    scan_naive(&probes[1], p, &disk).bytes_read,
                ]
            })
            .collect()
    };

    let executor = ScanExecutor::with_mode(table, CacheMode::Warm);
    let writer_done = AtomicBool::new(false);
    let barrier = Barrier::new(readers + 1);
    let mut seen: HashSet<u64> = HashSet::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for reader in 0..readers {
            let executor = &executor;
            let barrier = &barrier;
            let writer_done = &writer_done;
            let checksum_oracle = &checksum_oracle;
            let bytes_oracle = &bytes_oracle;
            let disk = &disk;
            let table = Arc::clone(table);
            handles.push(s.spawn(move || {
                barrier.wait();
                let mut generations = HashSet::new();
                let mut k = 0usize;
                // Fixed scan count, plus keep scanning until the writer
                // finished so late flips race real traffic too.
                while k < scans_per_reader || !writer_done.load(Ordering::Relaxed) {
                    let i = (reader + k) % checksum_oracle.len();
                    let p = projections[i];
                    let snapshot = table.snapshot();
                    generations.insert(snapshot.generation);
                    let fast = executor.scan_snapshot(&snapshot, p, disk);
                    // Bit-exact against the oracle on the SAME pin.
                    let naive = scan_naive_snapshot(&snapshot, p, disk);
                    assert_eq!(
                        fast.checksum, naive.checksum,
                        "[{policy_tag}] executor diverged from its pinned snapshot"
                    );
                    assert_eq!(fast.bytes_read, naive.bytes_read);
                    assert_eq!(fast.io_seconds.to_bits(), naive.io_seconds.to_bits());
                    // Layout-independent result.
                    assert_eq!(
                        fast.checksum, checksum_oracle[i],
                        "[{policy_tag}] scan returned wrong data"
                    );
                    // Atomicity: bytes_read matches exactly one published
                    // layout, never a half-moved mixture.
                    assert!(
                        bytes_oracle[i].contains(&fast.bytes_read),
                        "[{policy_tag}] scan observed a half-moved layout: \
                         {} not in {:?} (projection {p})",
                        fast.bytes_read,
                        bytes_oracle[i],
                    );
                    k += 1;
                }
                generations
            }));
        }
        // The writer: flip A↔B, yielding so readers interleave on one core.
        barrier.wait();
        for f in 0..flips {
            table.repartition(layouts[(f + 1) % 2], &disk);
            std::thread::yield_now();
        }
        writer_done.store(true, Ordering::Relaxed);
        for h in handles {
            seen.extend(h.join().expect("reader panicked"));
        }
    });
    seen
}

/// Regenerate the table's source data (same schema/rows/seed convention
/// used by every fixture below: seed 7).
fn probe_data(table: &StoredTable) -> slicer::storage::TableData {
    generate_table(&table.schema, table.rows(), 7)
}

#[test]
fn scans_racing_repartitions_match_pinned_oracles() {
    let (schema, rows) = {
        let mut state = 99u64;
        random_schema(&mut state)
    };
    let data = generate_table(&schema, rows, 7);
    let mut state = 4242u64;
    for policy in [
        CompressionPolicy::Default,
        CompressionPolicy::Dictionary,
        CompressionPolicy::None,
    ] {
        let layout_a = random_layout(&mut state, &schema);
        let layout_b = random_layout(&mut state, &schema);
        let projections: Vec<AttrSet> = (0..4)
            .map(|_| random_projection(&mut state, &schema))
            .chain([schema.all_attrs()])
            .collect();
        let table = Arc::new(StoredTable::load(&schema, &data, &layout_a, policy));
        let seen = race(
            &table,
            [&layout_a, &layout_b],
            &projections,
            &format!("{policy:?}"),
            4,
            24,
            16,
        );
        assert!(!seen.is_empty());
        // All 16 flips were published; the final generation is 16.
        assert_eq!(table.snapshot().generation, 16);
        assert!(
            seen.iter().all(|&g| g <= 16),
            "readers pinned only published generations: {seen:?}"
        );
    }
}

#[test]
fn warm_interleaved_scans_match_cold_scans_bit_for_bit() {
    // The PR-2 executor tied its warm arenas to one `&mut self`; two
    // threads interleaving warm scans of *different* projections through
    // one shared executor must nevertheless be bit-identical to cold
    // scans (the scratch pool hands each in-flight scan its own arenas).
    let mut state = 7u64;
    let (schema, rows) = random_schema(&mut state);
    let data = generate_table(&schema, rows, 7);
    let disk = DiskParams::paper_testbed();
    for policy in [CompressionPolicy::Default, CompressionPolicy::Dictionary] {
        let table = StoredTable::load(&schema, &data, &Partitioning::row(&schema), policy);
        let p1 = random_projection(&mut state, &schema);
        let p2 = schema.all_attrs();
        let cold1 = scan_naive(&table, p1, &disk);
        let cold2 = scan_naive(&table, p2, &disk);
        let warm = ScanExecutor::with_mode(&table, CacheMode::Warm);
        let rounds = 12usize;
        let barrier = Barrier::new(2);
        std::thread::scope(|s| {
            let h1 = {
                let (warm, barrier, disk) = (&warm, &barrier, &disk);
                s.spawn(move || {
                    (0..rounds)
                        .map(|_| {
                            barrier.wait(); // lock-step interleave
                            warm.scan(p1, disk)
                        })
                        .collect::<Vec<_>>()
                })
            };
            let h2 = {
                let (warm, barrier, disk) = (&warm, &barrier, &disk);
                s.spawn(move || {
                    (0..rounds)
                        .map(|_| {
                            barrier.wait();
                            warm.scan(p2, disk)
                        })
                        .collect::<Vec<_>>()
                })
            };
            for r in h1.join().expect("warm scanner 1") {
                assert_eq!(r.checksum, cold1.checksum, "{policy:?}");
                assert_eq!(r.bytes_read, cold1.bytes_read);
            }
            for r in h2.join().expect("warm scanner 2") {
                assert_eq!(r.checksum, cold2.checksum, "{policy:?}");
                assert_eq!(r.bytes_read, cold2.bytes_read);
            }
        });
    }
}

#[test]
fn pinned_snapshots_are_immortal_while_held() {
    // A reader that pins a snapshot and goes to sleep must find it intact
    // after many re-partitions freed every intermediate snapshot.
    let mut state = 31u64;
    let (schema, rows) = random_schema(&mut state);
    let data = generate_table(&schema, rows, 7);
    let disk = DiskParams::paper_testbed();
    let table = StoredTable::load(
        &schema,
        &data,
        &Partitioning::row(&schema),
        CompressionPolicy::Default,
    );
    let p = schema.all_attrs();
    let pinned = table.snapshot();
    let before = scan_naive_snapshot(&pinned, p, &disk);
    for _ in 0..8 {
        table.repartition(&Partitioning::column(&schema), &disk);
        table.repartition(&Partitioning::row(&schema), &disk);
    }
    assert_eq!(table.snapshot().generation, 16);
    let after = scan_naive_snapshot(&pinned, p, &disk);
    assert_eq!(before.checksum, after.checksum);
    assert_eq!(before.bytes_read, after.bytes_read);
    assert_eq!(before.io_seconds.to_bits(), after.io_seconds.to_bits());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property form of the race: random schema, random layout pair,
    /// random projections, random policy — concurrent scans through one
    /// shared executor match the pinned-snapshot oracle bit for bit.
    #[test]
    fn concurrent_scans_match_oracle_for_any_snapshot_they_pinned(seed in any::<u64>()) {
        let mut state = seed;
        let (schema, rows) = random_schema(&mut state);
        let data = generate_table(&schema, rows, 7);
        let policy = match next(&mut state) % 3 {
            0 => CompressionPolicy::None,
            1 => CompressionPolicy::Default,
            _ => CompressionPolicy::Dictionary,
        };
        let layout_a = random_layout(&mut state, &schema);
        let layout_b = random_layout(&mut state, &schema);
        let projections: Vec<AttrSet> = (0..3)
            .map(|_| random_projection(&mut state, &schema))
            .collect();
        let table = Arc::new(StoredTable::load(&schema, &data, &layout_a, policy));
        let seen = race(
            &table,
            [&layout_a, &layout_b],
            &projections,
            &format!("{policy:?}"),
            3,
            9,
            6,
        );
        prop_assert!(!seen.is_empty());
        prop_assert_eq!(table.snapshot().generation, 6);
    }
}
