//! Injected-fault guarantees, end to end over real sockets.
//!
//! A [`FaultyStream`] between the client and the TCP connection cuts,
//! bit-flips, or delays traffic at exact byte offsets — placed at every
//! interesting frame boundary, in both directions. The property under
//! test, for every fault point:
//!
//! > the client observes either a correct checksummed result
//! > (bit-identical to the in-process oracle), a typed error, or a
//! > converging retry — never a hang, never a panic, never silently
//! > wrong bytes.
//!
//! Ingest additionally guarantees **exactly-once**: whatever the fault
//! does to requests or replies, a retried batch lands in the delta
//! exactly once (the client-assigned idempotency sequence dedupes
//! replays server-side). And a server killed mid-traffic hands its fleet
//! back intact: a restarted server over the same fleet serves the same
//! bytes while the client rides through on reconnect+retry.

use proptest::prelude::*;
use slicer::client::{Client, ClientConfig};
use slicer::cost::HddCostModel;
use slicer::lifecycle::{FleetConfig, TableFleet, TableManager, TableManagerConfig};
use slicer::model::{
    AttrId, AttrKind, AttrSet, Literal, Partitioning, PredClause, PredOp, Predicate, Query,
    TableSchema,
};
use slicer::net::{
    encode_request, Fault, FaultKind, FaultPlan, FaultyStream, Request, Server, ServerConfig,
    ServerHandle, WireStream,
};
use slicer::storage::{
    generate_table, scan_naive_query_snapshot, scan_naive_snapshot, CompressionPolicy, IngestBatch,
    StoredTable,
};
use slicer_core::HillClimb;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const ROWS: usize = 120;

fn schema() -> TableSchema {
    TableSchema::builder("alpha", ROWS as u64)
        .attr("K", 4, AttrKind::Int)
        .attr("V", 8, AttrKind::Decimal)
        .attr("C", 10, AttrKind::Text)
        .build()
        .expect("valid schema")
}

fn fleet() -> TableFleet {
    let s = schema();
    let data = generate_table(&s, ROWS, 7);
    let table = StoredTable::load(
        &s,
        &data,
        &Partitioning::row(&s),
        CompressionPolicy::Default,
    );
    let mut fleet = TableFleet::new(FleetConfig::default());
    fleet.add_table(
        "alpha",
        TableManager::new(
            table,
            Box::new(HillClimb::new()),
            HddCostModel::paper_testbed(),
            TableManagerConfig::default(),
        ),
    );
    fleet
}

fn spawn() -> ServerHandle {
    Server::spawn(fleet(), ServerConfig::default()).expect("bind on loopback")
}

fn scan_query() -> Query {
    Query::new("q", [0usize, 1, 2].into_iter().collect::<AttrSet>())
}

/// The same projection filtered by a conjunction. The carried
/// `kept_fraction` is a deliberately wrong client estimate — the server
/// must discard it and re-stamp from its own pruning metadata.
fn pred_query() -> Query {
    Query::new("qp", [0usize, 1, 2].into_iter().collect::<AttrSet>()).with_predicate(
        Predicate::new(vec![
            PredClause::new(AttrId(0), PredOp::Le, Literal::int(60)),
            PredClause::new(AttrId(1), PredOp::Ge, Literal::decimal(0)),
        ])
        .with_kept_fraction(0.000001),
    )
}

/// Predicate-filtered naive oracle over the server's live snapshot.
fn oracle_query_checksum(handle: &ServerHandle, q: &Query) -> u64 {
    handle.with_fleet(|fleet| {
        let target = fleet.scan_target("alpha").expect("registered");
        scan_naive_query_snapshot(&target.table.snapshot(), q, &target.disk).checksum
    })
}

fn oracle_checksum(handle: &ServerHandle) -> u64 {
    handle.with_fleet(|fleet| {
        let target = fleet.scan_target("alpha").expect("registered");
        scan_naive_snapshot(
            &target.table.snapshot(),
            scan_query().referenced,
            &target.disk,
        )
        .checksum
    })
}

fn retry_cfg(client_id: u64) -> ClientConfig {
    ClientConfig {
        client_id,
        max_attempts: 8,
        request_timeout: Duration::from_secs(2),
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
        ..ClientConfig::default()
    }
}

/// A client whose FIRST connection runs under `plan`; reconnects are
/// clean. This models "the fault struck once" — the retry loop must
/// converge on the clean path.
fn faulty_once_client(addr: SocketAddr, cfg: ClientConfig, plan: FaultPlan) -> Client {
    let dialed = Arc::new(AtomicUsize::new(0));
    Client::with_connector(
        cfg,
        Box::new(move || {
            let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(1))?;
            stream.set_nodelay(true).ok();
            if dialed.fetch_add(1, Ordering::SeqCst) == 0 {
                Ok(Box::new(FaultyStream::new(stream, plan.clone())) as Box<dyn WireStream>)
            } else {
                Ok(Box::new(stream) as Box<dyn WireStream>)
            }
        }),
    )
}

/// Every fault point for a request/response exchange whose request frame
/// is `req_len` bytes and whose expected reply is `resp_len` bytes:
/// cut/flip/delay, both directions, at the frame edges and mid-frame.
fn fault_points(req_len: u64, resp_len: u64) -> Vec<Fault> {
    let mut points = Vec::new();
    for at in [0, 1, 4, 8, req_len / 2, req_len - 1] {
        points.push(Fault::new(FaultKind::CutWrite, at));
        points.push(Fault::new(FaultKind::FlipWrite, at));
    }
    for at in [0, 1, 4, 8, resp_len / 2, resp_len - 1] {
        points.push(Fault::new(FaultKind::CutRead, at));
        points.push(Fault::new(FaultKind::FlipRead, at));
    }
    points.push(Fault::new(FaultKind::DelayWrite, 0));
    points.push(Fault::new(FaultKind::DelayRead, 0));
    points
}

#[test]
fn scans_converge_through_every_fault_point() {
    let handle = spawn();
    let want = oracle_checksum(&handle);
    let q = scan_query();
    let req_len = encode_request(
        1,
        &Request::Scan {
            table: "alpha".into(),
            query_name: q.name.clone(),
            weight: q.weight,
            attrs: q.referenced.iter().map(|a| a.index() as u16).collect(),
            predicate: None,
            deadline_micros: 0,
        },
    )
    .len() as u64;
    // A ScanOk frame: 8 header + 8 id + 1 kind + 48 payload.
    let resp_len = 65u64;
    for (i, fault) in fault_points(req_len, resp_len).into_iter().enumerate() {
        let plan = FaultPlan::single(fault.clone());
        let mut c = faulty_once_client(handle.addr(), retry_cfg(100 + i as u64), plan.clone());
        let reply = c
            .scan("alpha", &q)
            .unwrap_or_else(|e| panic!("fault {fault:?} did not converge: {e}"));
        assert_eq!(
            reply.checksum, want,
            "fault {fault:?}: retry converged on wrong bytes"
        );
        assert_eq!(plan.fired(), 1, "fault {fault:?} never struck");
    }
    // The server survived every abuse and still serves cleanly.
    let mut clean = Client::connect(handle.addr(), retry_cfg(99));
    assert_eq!(clean.scan("alpha", &q).unwrap().checksum, want);
    assert_eq!(clean.stats().retries, 0);
    handle.shutdown();
}

#[test]
fn predicated_scans_converge_through_every_fault_point() {
    let handle = spawn();
    let q = pred_query();
    let want = oracle_query_checksum(&handle, &q);
    // The pure-projection oracle must differ — otherwise the predicate
    // isn't filtering anything and the sweep proves nothing.
    assert_ne!(
        want,
        oracle_checksum(&handle),
        "predicate must actually filter rows for this sweep to be meaningful"
    );
    let req_len = encode_request(
        1,
        &Request::Scan {
            table: "alpha".into(),
            query_name: q.name.clone(),
            weight: q.weight,
            attrs: q.referenced.iter().map(|a| a.index() as u16).collect(),
            predicate: q.predicate.clone(),
            deadline_micros: 0,
        },
    )
    .len() as u64;
    let resp_len = 65u64;
    for (i, fault) in fault_points(req_len, resp_len).into_iter().enumerate() {
        let plan = FaultPlan::single(fault.clone());
        let mut c = faulty_once_client(handle.addr(), retry_cfg(700 + i as u64), plan.clone());
        let reply = c
            .scan("alpha", &q)
            .unwrap_or_else(|e| panic!("fault {fault:?} did not converge: {e}"));
        assert_eq!(
            reply.checksum, want,
            "fault {fault:?}: predicated retry converged on wrong bytes"
        );
        // The client shipped a bogus 1e-6 estimate; the reply must carry
        // the server's own measurement instead.
        assert!(
            reply.kept_fraction > 0.000001 && reply.kept_fraction <= 1.0,
            "fault {fault:?}: kept_fraction {} was not re-stamped server-side",
            reply.kept_fraction
        );
        assert_eq!(plan.fired(), 1, "fault {fault:?} never struck");
    }
    let mut clean = Client::connect(handle.addr(), retry_cfg(98));
    assert_eq!(clean.scan("alpha", &q).unwrap().checksum, want);
    handle.shutdown();
}

#[test]
fn restarted_server_re_serves_identical_pruned_bytes() {
    let handle = spawn();
    let q = pred_query();
    let want = oracle_query_checksum(&handle, &q);
    let mut c = Client::connect(handle.addr(), retry_cfg(21));
    let before = c.scan("alpha", &q).expect("first predicated scan");
    assert_eq!(before.checksum, want);

    // Crash-and-restart over the SAME fleet at a new address: the pruned
    // scan must come back bit- and byte-identical.
    let fleet = handle.shutdown();
    let handle2 = Server::spawn(fleet, ServerConfig::default()).expect("respawn");
    let mut c2 = Client::connect(handle2.addr(), retry_cfg(22));
    let after = c2.scan("alpha", &q).expect("predicated scan after restart");
    assert_eq!(
        after.checksum, before.checksum,
        "restart changed result bytes"
    );
    assert_eq!(
        after.bytes_read, before.bytes_read,
        "restart changed the pruned read footprint"
    );
    assert_eq!(
        after.kept_fraction, before.kept_fraction,
        "restart changed the stamped selectivity"
    );
    handle2.shutdown();
}

#[test]
fn ingest_is_exactly_once_through_every_fault_point() {
    let handle = spawn();
    let s = schema();
    let batch_rows = 5u64;
    // An IngestOk frame: 8 header + 8 id + 1 kind + 49 payload.
    let resp_len = 66u64;
    // Generated batches vary in encoded length (text columns), so the
    // fault offsets must be derived per round from the round's actual
    // request frame — fault_points() always yields the same point count,
    // only the offsets move.
    let n_points = fault_points(resp_len, resp_len).len();
    let mut expected_delta_rows = 0usize;
    for i in 0..n_points {
        let batch = IngestBatch::append(generate_table(&s, batch_rows as usize, 2000 + i as u64));
        let req_len = encode_request(
            1,
            &Request::Ingest {
                table: "alpha".into(),
                client_id: 1,
                sequence: 1,
                deadline_micros: 0,
                batch: slicer::storage::encode_ingest_batch(&batch),
            },
        )
        .len() as u64;
        let fault = fault_points(req_len, resp_len)
            .into_iter()
            .nth(i)
            .expect("point count is length-independent");
        let plan = FaultPlan::single(fault.clone());
        let mut c = faulty_once_client(handle.addr(), retry_cfg(500 + i as u64), plan.clone());
        let reply = c
            .ingest("alpha", &batch)
            .unwrap_or_else(|e| panic!("fault {fault:?}: ingest did not converge: {e}"));
        assert_eq!(plan.fired(), 1, "fault {fault:?} never struck");
        expected_delta_rows += batch_rows as usize;
        let delta_rows = handle.with_fleet(|fleet| {
            let target = fleet.scan_target("alpha").expect("registered");
            target.table.snapshot().delta.rows()
        });
        assert_eq!(
            delta_rows,
            expected_delta_rows,
            "fault {fault:?}: batch applied not-exactly-once \
             (deduped={}, retries={})",
            reply.deduped,
            c.stats().retries,
        );
        // When the reply (not the request) was lost, the retry must have
        // been answered from the idempotency ledger.
        if matches!(fault.kind, FaultKind::CutRead | FaultKind::FlipRead) && c.stats().retries > 0 {
            assert!(
                reply.deduped,
                "fault {fault:?}: replayed sequence was re-applied instead of deduped"
            );
        }
    }
    handle.shutdown();
}

#[test]
fn server_killed_mid_traffic_restarts_over_the_same_fleet() {
    let handle = spawn();
    let want = oracle_checksum(&handle);
    let q = scan_query();
    // The client dials whatever port this slot currently holds — after
    // the restart it follows the server to its new address.
    let port = Arc::new(AtomicU64::new(u64::from(handle.addr().port())));
    let ip = handle.addr().ip();
    let dial_port = Arc::clone(&port);
    let mut c = Client::with_connector(
        ClientConfig {
            client_id: 9,
            max_attempts: 40,
            request_timeout: Duration::from_secs(2),
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(50),
            ..ClientConfig::default()
        },
        Box::new(move || {
            let addr = SocketAddr::new(ip, dial_port.load(Ordering::SeqCst) as u16);
            let stream = TcpStream::connect_timeout(&addr, Duration::from_millis(250))?;
            stream.set_nodelay(true).ok();
            Ok(Box::new(stream) as Box<dyn WireStream>)
        }),
    );

    std::thread::scope(|s| {
        let scans = s.spawn(move || {
            let mut checks = Vec::new();
            for _ in 0..30 {
                // Every scan must converge — before, across, and after
                // the kill — and carry oracle-identical bytes. Paced so
                // the traffic spans the kill window instead of finishing
                // before it.
                checks.push(
                    c.scan("alpha", &q)
                        .expect("scan rode through restart")
                        .checksum,
                );
                std::thread::sleep(Duration::from_millis(10));
            }
            (checks, c.stats())
        });
        // Kill the server mid-traffic, then restart it over the SAME
        // fleet at a new address.
        std::thread::sleep(Duration::from_millis(40));
        let fleet = handle.shutdown();
        std::thread::sleep(Duration::from_millis(40));
        let handle2 = Server::spawn(fleet, ServerConfig::default()).expect("respawn");
        port.store(u64::from(handle2.addr().port()), Ordering::SeqCst);
        let (checks, stats) = scans.join().expect("scanner thread");
        assert_eq!(checks.len(), 30);
        assert!(
            checks.iter().all(|&c| c == want),
            "restarted server must serve identical bytes"
        );
        assert!(
            stats.reconnects >= 1,
            "the kill must have forced at least one reconnect: {stats:?}"
        );
        let fleet = handle2.shutdown();
        // Every successful scan was booked, across both server
        // lifetimes. A scan recorded server-side whose reply was lost in
        // the kill is legitimately retried (scans are read-only), so the
        // count may exceed 30 — but never undercount.
        assert!(
            fleet.stats().queries >= 30,
            "scans went unbooked: {}",
            fleet.stats().queries
        );
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random fault kind × random offset: one faulty connection must
    /// never yield wrong bytes — only convergence or a clean typed
    /// failure after bounded attempts.
    #[test]
    fn random_faults_never_produce_wrong_bytes(seed in any::<u64>(), kind_ix in 0u8..6, at in 0u64..64) {
        let handle = spawn();
        let want = oracle_checksum(&handle);
        let kind = match kind_ix {
            0 => FaultKind::CutWrite,
            1 => FaultKind::CutRead,
            2 => FaultKind::FlipWrite,
            3 => FaultKind::FlipRead,
            4 => FaultKind::DelayWrite,
            _ => FaultKind::DelayRead,
        };
        let plan = FaultPlan::single(Fault::new(kind, at));
        let mut c = faulty_once_client(handle.addr(), retry_cfg(seed | 1), plan);
        match c.scan("alpha", &scan_query()) {
            Ok(reply) => prop_assert_eq!(reply.checksum, want),
            // Bounded, typed failure is allowed; hangs/panics are not.
            Err(e) => {
                let msg = e.to_string();
                prop_assert!(!msg.is_empty());
            }
        }
        handle.shutdown();
    }
}
