//! ScanExecutor ⇔ scan_naive equivalence oracle.
//!
//! The vectorized executor must be *bit-for-bit* indistinguishable from
//! the original materialize-then-iterate scan on everything a caller can
//! observe besides CPU time: checksum, `bytes_read`, and `io_seconds` —
//! over random schemas, random layouts, random projections, all three
//! compression policies, and both cache modes. Also pins the parallel
//! table generator to its sequential oracle.

use proptest::prelude::*;
use slicer::model::{AttrKind, AttrSet, Partitioning, TableSchema};
use slicer::storage::{
    generate_table, generate_table_seq, scan_naive, CacheMode, CompressionPolicy, ScanExecutor,
    StoredTable,
};
use slicer_cost::DiskParams;

/// Deterministic splitmix-style stream over a test seed.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn random_schema(state: &mut u64) -> (TableSchema, usize) {
    let attrs = 2 + (next(state) % 6) as usize; // 2..=7
    let rows = 50 + (next(state) % 300) as usize; // 50..=349
    let mut b = TableSchema::builder("T", rows as u64);
    for i in 0..attrs {
        let (size, kind) = match next(state) % 4 {
            0 => (4, AttrKind::Int),
            1 => (8, AttrKind::Decimal),
            2 => (4, AttrKind::Date),
            _ => ((1 + next(state) % 30) as u32, AttrKind::Text),
        };
        b = b.attr(format!("A{i}"), size, kind);
    }
    (b.build().expect("valid random schema"), rows)
}

fn random_layout(state: &mut u64, schema: &TableSchema) -> Partitioning {
    let n = schema.attr_count();
    let groups = 1 + (next(state) % n as u64) as usize;
    let mut sets = vec![AttrSet::default(); groups];
    for a in 0..n {
        sets[(next(state) % groups as u64) as usize].insert(a);
    }
    sets.retain(|s| !s.is_empty());
    Partitioning::new(schema, sets).expect("random assignment covers the schema")
}

fn random_projection(state: &mut u64, schema: &TableSchema) -> AttrSet {
    let mut p = AttrSet::default();
    for a in 0..schema.attr_count() {
        if next(state) & 1 == 1 {
            p.insert(a);
        }
    }
    p // may be empty: the empty projection is a valid (degenerate) scan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn executor_is_bit_identical_to_naive(seed in any::<u64>()) {
        let mut state = seed;
        let (schema, rows) = random_schema(&mut state);
        let data = generate_table(&schema, rows, seed);
        let layout = random_layout(&mut state, &schema);
        let disk = DiskParams::paper_testbed();
        let projections = [
            random_projection(&mut state, &schema),
            AttrSet::default(),
            schema.all_attrs(),
        ];
        for policy in [
            CompressionPolicy::None,
            CompressionPolicy::Default,
            CompressionPolicy::Dictionary,
        ] {
            let table = StoredTable::load(&schema, &data, &layout, policy);
            let cold = ScanExecutor::new(&table);
            let warm = ScanExecutor::with_mode(&table, CacheMode::Warm);
            for &p in &projections {
                let oracle = scan_naive(&table, p, &disk);
                // Cold mode, twice (second scan re-decodes into reused
                // arenas); warm mode, twice (second scan hits the cache).
                for r in [
                    cold.scan(p, &disk),
                    cold.scan(p, &disk),
                    warm.scan(p, &disk),
                    warm.scan(p, &disk),
                ] {
                    prop_assert_eq!(r.checksum, oracle.checksum,
                        "checksum mismatch: {:?} {:?} proj {:?}", policy, layout, p);
                    prop_assert_eq!(r.bytes_read, oracle.bytes_read);
                    prop_assert_eq!(r.io_seconds, oracle.io_seconds);
                }
            }
        }
    }

    #[test]
    fn parallel_generation_is_byte_identical(seed in any::<u64>()) {
        let mut state = seed;
        let (schema, rows) = random_schema(&mut state);
        prop_assert_eq!(
            generate_table(&schema, rows, seed),
            generate_table_seq(&schema, rows, seed)
        );
    }
}

#[test]
fn warm_mode_survives_projection_changes() {
    // Scanning wider after warming must prepare the newly referenced
    // segments, not serve stale cache state.
    let mut state = 7u64;
    let (schema, rows) = random_schema(&mut state);
    let data = generate_table(&schema, rows, 7);
    let disk = DiskParams::paper_testbed();
    let table = StoredTable::load(
        &schema,
        &data,
        &Partitioning::row(&schema),
        CompressionPolicy::Default,
    );
    let warm = ScanExecutor::with_mode(&table, CacheMode::Warm);
    let mut projections: Vec<AttrSet> = (0..schema.attr_count()).map(AttrSet::single).collect();
    projections.push(schema.all_attrs());
    for p in projections {
        assert_eq!(
            warm.scan(p, &disk).checksum,
            scan_naive(&table, p, &disk).checksum
        );
    }
}
