//! Cross-crate integration: workloads → advisors → cost models → metrics,
//! end to end on real TPC-H/SSB prefixes.

use slicer::core::{all_advisors, paper_advisors, PerfectMaterializedViews};
use slicer::metrics::{column_cost, pmv_cost, row_cost, run_advisor};
use slicer::prelude::*;

fn quick_tpch() -> slicer::workloads::Benchmark {
    tpch::benchmark(0.1).prefix(8)
}

#[test]
fn every_advisor_produces_valid_partitionings_on_tpch() {
    let b = quick_tpch();
    let m = HddCostModel::paper_testbed();
    for advisor in all_advisors() {
        let run = run_advisor(advisor.as_ref(), &b, &m)
            .unwrap_or_else(|e| panic!("{} failed: {e}", advisor.name()));
        for t in &run.tables {
            let schema = &b.tables()[t.table_index];
            Partitioning::new(schema, t.layout.partitions().to_vec()).unwrap_or_else(|e| {
                panic!(
                    "{} produced invalid layout for {}: {e}",
                    advisor.name(),
                    t.table
                )
            });
        }
    }
}

#[test]
fn bruteforce_lower_bounds_every_advisor() {
    let b = quick_tpch();
    let m = HddCostModel::paper_testbed();
    let bf = run_advisor(&BruteForce::new(), &b, &m).expect("brute force fits");
    let optimum = bf.total_cost(&b, &m);
    for advisor in paper_advisors() {
        if advisor.name() == "BruteForce" {
            continue;
        }
        let run = run_advisor(advisor.as_ref(), &b, &m).expect("advisor runs");
        let c = run.total_cost(&b, &m);
        assert!(
            c >= optimum - 1e-6,
            "{} ({c}) beat the brute-force optimum ({optimum})",
            advisor.name()
        );
    }
    // Baselines are also bounded.
    assert!(row_cost(&b, &m) >= optimum);
    assert!(column_cost(&b, &m) >= optimum);
}

#[test]
fn pmv_is_a_global_lower_bound() {
    let b = quick_tpch();
    let m = HddCostModel::paper_testbed();
    let pmv = pmv_cost(&b, &m);
    for advisor in all_advisors() {
        let run = run_advisor(advisor.as_ref(), &b, &m).expect("advisor runs");
        assert!(
            run.total_cost(&b, &m) >= pmv - 1e-6,
            "{} beat perfect materialized views",
            advisor.name()
        );
    }
}

#[test]
fn advisors_are_deterministic_across_runs() {
    let b = quick_tpch();
    let m = HddCostModel::paper_testbed();
    for advisor in paper_advisors() {
        let a = run_advisor(advisor.as_ref(), &b, &m).expect("run 1");
        let bb = run_advisor(advisor.as_ref(), &b, &m).expect("run 2");
        for (x, y) in a.tables.iter().zip(&bb.tables) {
            assert_eq!(
                x.layout,
                y.layout,
                "{} nondeterministic on {}",
                advisor.name(),
                x.table
            );
        }
    }
}

#[test]
fn ssb_pipeline_works_for_all_advisors() {
    let b = ssb::benchmark(0.1).prefix(4);
    let m = HddCostModel::paper_testbed();
    for advisor in paper_advisors() {
        let run = run_advisor(advisor.as_ref(), &b, &m)
            .unwrap_or_else(|e| panic!("{} failed on SSB: {e}", advisor.name()));
        assert!(run.total_cost(&b, &m) > 0.0);
    }
}

#[test]
fn main_memory_model_plugs_into_the_same_pipeline() {
    let b = quick_tpch();
    let mm = MainMemoryCostModel::paper_testbed();
    let run = run_advisor(&HillClimb::new(), &b, &mm).expect("hillclimb under MM");
    let col = column_cost(&b, &mm);
    assert!(
        run.total_cost(&b, &mm) <= col * (1.0 + 1e-9),
        "HillClimb must not lose to column under its own objective"
    );
}

#[test]
fn pmv_views_cover_their_queries() {
    let b = quick_tpch();
    for (_, schema, w) in b.touched_tables() {
        let views = PerfectMaterializedViews::views(&w);
        for q in w.queries() {
            assert!(
                views
                    .iter()
                    .any(|v| q.referenced.is_subset_of(*v) && *v == q.referenced),
                "query {} has no exact view on {}",
                q.name,
                schema.name()
            );
        }
    }
}

#[test]
fn prefix_consistency_across_tables() {
    // The k-prefix of the benchmark must equal per-table workload prefixes.
    let full = tpch::benchmark(0.1);
    let k = 5;
    let pre = full.prefix(k);
    for idx in 0..full.tables().len() {
        let from_prefix = pre.table_workload(idx);
        for q in from_prefix.queries() {
            // Every query in the prefixed workload appears in the full one
            // with the same reference set.
            let orig = full
                .table_workload(idx)
                .queries()
                .iter()
                .find(|o| o.name == q.name)
                .map(|o| o.referenced);
            assert_eq!(orig, Some(q.referenced));
        }
    }
}
