//! Property-based tests (proptest) on the workspace's core invariants.

use proptest::collection::vec;
use proptest::prelude::*;
use slicer::combinat::{bell_number, bond_energy_order, AffinityMatrix, SetPartitions};
use slicer::core::paper_advisors;
use slicer::prelude::*;
use slicer::workloads::synth::{table_and_workload, AccessPattern, SyntheticSpec};

// ---------- AttrSet algebra ----------

fn attr_indices() -> impl Strategy<Value = Vec<usize>> {
    vec(0usize..256, 0..24)
}

proptest! {
    #[test]
    fn attrset_union_is_commutative_and_idempotent(a in attr_indices(), b in attr_indices()) {
        let sa: AttrSet = a.iter().copied().collect();
        let sb: AttrSet = b.iter().copied().collect();
        prop_assert_eq!(sa.union(sb), sb.union(sa));
        prop_assert_eq!(sa.union(sa), sa);
        prop_assert_eq!(sa.union(AttrSet::EMPTY), sa);
    }

    #[test]
    fn attrset_demorgan_within_universe(a in attr_indices(), b in attr_indices()) {
        let u = AttrSet::all(256);
        let sa: AttrSet = a.iter().copied().collect();
        let sb: AttrSet = b.iter().copied().collect();
        // u \ (a ∪ b) == (u \ a) ∩ (u \ b)
        prop_assert_eq!(
            u.difference(sa.union(sb)),
            u.difference(sa).intersection(u.difference(sb))
        );
    }

    #[test]
    fn attrset_len_matches_iteration(a in attr_indices()) {
        let s: AttrSet = a.iter().copied().collect();
        prop_assert_eq!(s.len(), s.iter().count());
        let sorted: Vec<usize> = s.iter().map(|x| x.index()).collect();
        let mut expected: Vec<usize> = a.clone();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(sorted, expected);
    }

    #[test]
    fn attrset_intersects_agrees_with_intersection(a in attr_indices(), b in attr_indices()) {
        let sa: AttrSet = a.iter().copied().collect();
        let sb: AttrSet = b.iter().copied().collect();
        prop_assert_eq!(sa.intersects(sb), !sa.intersection(sb).is_empty());
    }
}

// ---------- enumeration ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn rgs_enumeration_counts_match_bell(n in 1usize..9) {
        let mut it = SetPartitions::new(n);
        let mut count = 0u128;
        while it.next_rgs().is_some() { count += 1; }
        prop_assert_eq!(count, bell_number(n));
    }
}

// ---------- bond energy ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn bea_always_returns_a_permutation(
        n in 2usize..12,
        queries in vec(vec(0usize..12, 1..6), 1..10),
    ) {
        let mut m = AffinityMatrix::zero(n);
        for q in &queries {
            let attrs: Vec<usize> = q.iter().map(|a| a % n).collect();
            m.record_query(&attrs, 1.0);
        }
        let order = bond_energy_order(&m);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}

// ---------- advisors on random workloads ----------

fn spec_strategy() -> impl Strategy<Value = SyntheticSpec> {
    (2usize..10, 1usize..10, any::<u64>(), 0usize..3).prop_map(|(attrs, queries, seed, pattern)| {
        SyntheticSpec {
            attrs,
            rows: 500_000,
            queries,
            pattern: match pattern {
                0 => AccessPattern::Regular { classes: 2 },
                1 => AccessPattern::Fragmented,
                _ => AccessPattern::Uniform { p: 0.35 },
            },
            seed,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn every_advisor_yields_valid_layouts_on_random_workloads(spec in spec_strategy()) {
        let (table, workload) = table_and_workload(&spec);
        let cost = HddCostModel::paper_testbed();
        let req = PartitionRequest::new(&table, &workload, &cost);
        for advisor in paper_advisors() {
            let layout = advisor
                .partition(&req)
                .unwrap_or_else(|e| panic!("{} failed: {e}", advisor.name()));
            prop_assert!(
                Partitioning::new(&table, layout.partitions().to_vec()).is_ok(),
                "{} produced an invalid layout {layout}", advisor.name()
            );
        }
    }

    #[test]
    fn bruteforce_is_optimal_on_random_workloads(spec in spec_strategy()) {
        let (table, workload) = table_and_workload(&spec);
        let cost = HddCostModel::paper_testbed();
        let req = PartitionRequest::new(&table, &workload, &cost);
        let bf = BruteForce::exhaustive().with_threads(1).partition(&req).expect("small space");
        let optimum = req.cost(&bf);
        for advisor in paper_advisors() {
            if advisor.name() == "BruteForce" { continue; }
            let layout = advisor.partition(&req).expect("advisor runs");
            prop_assert!(
                req.cost(&layout) >= optimum - 1e-9 * optimum.abs().max(1.0),
                "{} beat brute force: {} < {optimum}", advisor.name(), req.cost(&layout)
            );
        }
        // Row/Column bounded too.
        prop_assert!(req.cost(&Partitioning::row(&table)) >= optimum - 1e-9);
        prop_assert!(req.cost(&Partitioning::column(&table)) >= optimum - 1e-9);
    }

    #[test]
    fn hillclimb_never_loses_to_column_its_own_start(spec in spec_strategy()) {
        let (table, workload) = table_and_workload(&spec);
        let cost = HddCostModel::paper_testbed();
        let req = PartitionRequest::new(&table, &workload, &cost);
        let layout = HillClimb::new().partition(&req).expect("hillclimb");
        prop_assert!(req.cost(&layout) <= req.cost(&Partitioning::column(&table)) + 1e-9);
    }
}

// ---------- cost model properties ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn reading_more_partitions_never_costs_less(
        spec in spec_strategy(),
        extra in 0usize..8,
    ) {
        let (table, workload) = table_and_workload(&spec);
        if workload.is_empty() { return Ok(()); }
        let cost = HddCostModel::paper_testbed();
        let q = workload.queries()[0].referenced;
        let col = Partitioning::column(&table);
        let read: Vec<AttrSet> = col.referenced_partitions(q).copied().collect();
        let base = cost.read_cost(&table, &read);
        // Add one more (unreferenced) partition to the read set.
        let extra_attr = extra % table.attr_count();
        let mut bigger = read.clone();
        let extra_set = AttrSet::single(extra_attr);
        if !bigger.contains(&extra_set) {
            bigger.push(extra_set);
            prop_assert!(
                cost.read_cost(&table, &bigger) >= base - 1e-12,
                "reading strictly more data got cheaper"
            );
        }
    }

    #[test]
    fn wider_rows_cost_more_to_scan(width_a in 1u32..64, width_b in 64u32..256) {
        let rows = 1_000_000;
        let t = TableSchema::builder("T", rows)
            .attr("A", width_a, AttrKind::Text)
            .attr("B", width_b, AttrKind::Text)
            .build()
            .expect("valid");
        let cost = HddCostModel::paper_testbed();
        let narrow = cost.read_cost(&t, &[t.attr_set(&["A"]).expect("a")]);
        let wide = cost.read_cost(&t, &[t.attr_set(&["B"]).expect("b")]);
        prop_assert!(wide >= narrow, "wider partition scanned cheaper: {wide} < {narrow}");
    }
}
