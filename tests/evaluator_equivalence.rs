//! Equivalence of the incremental, memoized cost-evaluation engine with the
//! naive path, property-tested on random schemas, workloads, partitionings
//! and moves. The contract under test is strict: **bit-for-bit identical
//! costs** (compared via `f64::to_bits`) and **identical layouts** from
//! every advisor on either path.

use proptest::collection::vec;
use proptest::prelude::*;
use slicer::core::paper_advisors;
use slicer::cost::{CostEvaluator, CostModel, MainMemoryCostModel};
use slicer::prelude::*;
use slicer::workloads::synth::{table_and_workload, AccessPattern, SyntheticSpec};

fn spec_strategy() -> impl Strategy<Value = SyntheticSpec> {
    (2usize..10, 1usize..10, any::<u64>(), 0usize..3).prop_map(|(attrs, queries, seed, pattern)| {
        SyntheticSpec {
            attrs,
            rows: 500_000,
            queries,
            pattern: match pattern {
                0 => AccessPattern::Regular { classes: 2 },
                1 => AccessPattern::Fragmented,
                _ => AccessPattern::Uniform { p: 0.35 },
            },
            seed,
        }
    })
}

/// A valid random partitioning: attribute `i` goes to block `blocks[i % len]`,
/// empty blocks dropped.
fn random_groups(n: usize, blocks: &[usize]) -> Vec<AttrSet> {
    let nblocks = blocks.iter().map(|b| b % n).max().unwrap_or(0) + 1;
    let mut groups = vec![AttrSet::EMPTY; nblocks];
    for attr in 0..n {
        groups[blocks[attr % blocks.len()] % n].insert(attr);
    }
    groups.retain(|g| !g.is_empty());
    groups
}

fn models() -> Vec<Box<dyn CostModel>> {
    vec![
        Box::new(HddCostModel::paper_testbed()),
        Box::new(MainMemoryCostModel::paper_testbed()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn full_evaluation_matches_naive_bit_for_bit(
        spec in spec_strategy(),
        blocks in vec(0usize..8, 8..16),
    ) {
        let (table, workload) = table_and_workload(&spec);
        let groups = random_groups(table.attr_count(), &blocks);
        let p = Partitioning::from_disjoint_unchecked(groups.clone());
        for model in models() {
            let naive = model.workload_cost(&table, &p, &workload);
            let ev = CostEvaluator::new(model.as_ref(), &table, &workload, &groups, false);
            prop_assert_eq!(
                naive.to_bits(),
                ev.total().to_bits(),
                "{}: naive {naive} vs evaluator {}", model.name(), ev.total()
            );
        }
    }

    #[test]
    fn merge_moves_match_naive_bit_for_bit(
        spec in spec_strategy(),
        blocks in vec(0usize..5, 8..16),
    ) {
        let (table, workload) = table_and_workload(&spec);
        let groups = random_groups(table.attr_count(), &blocks);
        let p = Partitioning::from_disjoint_unchecked(groups.clone());
        for model in models() {
            let mut ev = CostEvaluator::new(model.as_ref(), &table, &workload, &groups, false);
            let n = ev.len();
            for i in 0..n {
                for j in (i + 1)..n {
                    let naive = model.workload_cost(&table, &p.merged(i, j), &workload);
                    prop_assert_eq!(
                        naive.to_bits(),
                        ev.merge_cost(i, j).to_bits(),
                        "{}: merge ({i},{j})", model.name()
                    );
                }
            }
            // Commit one merge and re-verify the running total.
            if n >= 2 {
                let committed = p.merged(0, 1);
                ev.commit_merge(0, 1);
                let naive = model.workload_cost(&table, &committed, &workload);
                prop_assert_eq!(naive.to_bits(), ev.total().to_bits());
                prop_assert_eq!(ev.partitioning(), committed);
            }
        }
    }

    #[test]
    fn split_moves_match_naive_bit_for_bit(
        spec in spec_strategy(),
        blocks in vec(0usize..4, 8..16),
    ) {
        let (table, workload) = table_and_workload(&spec);
        let groups = random_groups(table.attr_count(), &blocks);
        let p = Partitioning::from_disjoint_unchecked(groups.clone());
        for model in models() {
            let mut ev = CostEvaluator::new(model.as_ref(), &table, &workload, &groups, false);
            // Split every multi-attribute group into (first attr, rest).
            let splittable: Vec<usize> = (0..ev.len())
                .filter(|&g| ev.groups()[g].len() >= 2)
                .collect();
            for &g in &splittable {
                let whole = ev.groups()[g];
                let first = AttrSet::single(whole.min_attr().expect("non-empty"));
                let rest = whole.difference(first);
                let naive =
                    model.workload_cost(&table, &p.replaced(&[g], &[first, rest]), &workload);
                prop_assert_eq!(
                    naive.to_bits(),
                    ev.move_cost(&[g], &[first, rest]).to_bits(),
                    "{}: split group {g}", model.name()
                );
            }
            // Commit one split and re-verify.
            if let Some(&g) = splittable.first() {
                let whole = ev.groups()[g];
                let first = AttrSet::single(whole.min_attr().expect("non-empty"));
                let rest = whole.difference(first);
                let committed = p.replaced(&[g], &[first, rest]);
                ev.commit_move(&[g], &[first, rest]);
                let naive = model.workload_cost(&table, &committed, &workload);
                prop_assert_eq!(naive.to_bits(), ev.total().to_bits());
                prop_assert_eq!(ev.partitioning(), committed);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn every_advisor_returns_identical_layouts_on_both_paths(spec in spec_strategy()) {
        let (table, workload) = table_and_workload(&spec);
        for model in models() {
            let fast = PartitionRequest::new(&table, &workload, model.as_ref());
            let naive = fast.with_naive_evaluation();
            for advisor in paper_advisors() {
                let a = advisor.partition(&fast)
                    .unwrap_or_else(|e| panic!("{} fast failed: {e}", advisor.name()));
                let b = advisor.partition(&naive)
                    .unwrap_or_else(|e| panic!("{} naive failed: {e}", advisor.name()));
                prop_assert_eq!(
                    &a, &b,
                    "{} diverged under {}: fast {} vs naive {}",
                    advisor.name(), model.name(), a, b
                );
            }
        }
    }
}
