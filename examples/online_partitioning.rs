//! Online partitioning: stream a drifting query workload through O2P and
//! watch the layout adapt — the scenario O2P was designed for (BIRTE '11).
//!
//! Run with: `cargo run --release --example online_partitioning`

use slicer::core::O2pOnline;
use slicer::prelude::*;

fn main() -> Result<(), ModelError> {
    let table = tpch::table(tpch::TpchTable::Lineitem, 1.0);
    let cost = HddCostModel::new(DiskParams::paper_testbed().with_buffer_size(512 * 1024));
    let mut online = O2pOnline::new(&table, &cost);

    // Phase 1: a reporting application hammering the Q1/Q6 pricing columns.
    let pricing = table.attr_set(&["Quantity", "ExtendedPrice", "Discount", "ShipDate"])?;
    // Phase 2: a logistics application arrives, with a different footprint.
    let logistics = table.attr_set(&["OrderKey", "CommitDate", "ReceiptDate", "ShipMode"])?;

    println!("initial layout: 1 partition (row layout), no queries seen\n");
    for i in 0..6 {
        let layout = online.observe(Query::new(format!("pricing-{i}"), pricing));
        if i == 5 {
            println!(
                "after {} pricing queries:\n  {}",
                i + 1,
                layout.render(&table)
            );
        }
    }
    for i in 0..10 {
        let layout = online.observe(Query::new(format!("logistics-{i}"), logistics));
        if i == 9 {
            println!(
                "\nafter {} more logistics queries:\n  {}",
                i + 1,
                layout.render(&table)
            );
        }
    }

    let final_layout = online.layout();
    println!(
        "\nthe pricing columns stay co-located: {}",
        final_layout
            .partition_of(table.attr_id("ExtendedPrice").expect("attr"))
            .map(|p| table.render_set(p))
            .expect("attr is in some partition")
    );
    println!(
        "the logistics columns found their own home: {}",
        final_layout
            .partition_of(table.attr_id("CommitDate").expect("attr"))
            .map(|p| table.render_set(p))
            .expect("attr is in some partition")
    );
    println!(
        "\ntotal queries observed: {}; final partition count: {}",
        online.queries_seen(),
        final_layout.len()
    );
    Ok(())
}
