//! Online partitioning: stream a drifting query workload and watch the
//! layout adapt — first through O2P's incremental splitter (the scenario
//! it was designed for, BIRTE '11), then end to end through the
//! [`TableManager`] lifecycle: live scans over a stored table, sliding-
//! window re-advising under a budget, the paper's payoff test, and
//! zero-stall `StoredTable::repartition` — then through a
//! [`TableFleet`]: several tables behind one router, sharing one advisor
//! budget that goes to the most drifted table first — and finally through
//! the serve front: a multi-threaded drain that keeps scanning while a
//! re-partition is published mid-flight.
//!
//! Run with: `cargo run --release --example online_partitioning`

use slicer::core::O2pOnline;
use slicer::prelude::*;
use slicer::storage::{generate_table, CompressionPolicy, StoredTable};

fn main() -> Result<(), ModelError> {
    let table = tpch::table(tpch::TpchTable::Lineitem, 1.0);
    let cost = HddCostModel::new(DiskParams::paper_testbed().with_buffer_size(512 * 1024));
    let mut online = O2pOnline::new(&table, &cost);

    // Phase 1: a reporting application hammering the Q1/Q6 pricing columns.
    let pricing = table.attr_set(&["Quantity", "ExtendedPrice", "Discount", "ShipDate"])?;
    // Phase 2: a logistics application arrives, with a different footprint.
    let logistics = table.attr_set(&["OrderKey", "CommitDate", "ReceiptDate", "ShipMode"])?;

    println!("== O2P: the layout follows the stream ==\n");
    println!("initial layout: 1 partition (row layout), no queries seen\n");
    for i in 0..6 {
        let layout = online.observe(Query::new(format!("pricing-{i}"), pricing));
        if i == 5 {
            println!(
                "after {} pricing queries:\n  {}",
                i + 1,
                layout.render(&table)
            );
        }
    }
    for i in 0..10 {
        let layout = online.observe(Query::new(format!("logistics-{i}"), logistics));
        if i == 9 {
            println!(
                "\nafter {} more logistics queries:\n  {}",
                i + 1,
                layout.render(&table)
            );
        }
    }

    let final_layout = online.layout();
    println!(
        "\nthe pricing columns stay co-located: {}",
        final_layout
            .partition_of(table.attr_id("ExtendedPrice").expect("attr"))
            .map(|p| table.render_set(p))
            .expect("attr is in some partition")
    );
    println!(
        "the logistics columns found their own home: {}",
        final_layout
            .partition_of(table.attr_id("CommitDate").expect("attr"))
            .map(|p| table.render_set(p))
            .expect("attr is in some partition")
    );
    println!(
        "\ntotal queries observed: {}; final partition count: {}",
        online.queries_seen(),
        final_layout.len()
    );

    // The full lifecycle: a live stored table that re-slices itself when
    // (and only when) the paper's payoff test says the move amortizes.
    println!("\n== TableManager: payoff-gated in-place re-partitioning ==\n");
    let rows = 20_000usize;
    let schema = table.with_row_count(rows as u64);
    let data = generate_table(&schema, rows, 7);
    let stored = StoredTable::load(
        &schema,
        &data,
        &Partitioning::row(&schema),
        CompressionPolicy::Default,
    );
    let mut manager = TableManager::new(
        stored,
        Box::new(HillClimb::new()),
        HddCostModel::paper_testbed(),
        TableManagerConfig {
            window: 32,
            advise_every: 8,
            // Heavy live traffic cannot wait for an unbounded search:
            // every re-advise gets at most 10 ms, anytime best-so-far.
            budget: Budget::deadline(std::time::Duration::from_millis(10)),
            payoff_horizon: 64.0,
            ..TableManagerConfig::default()
        },
    );
    for (phase, referenced) in [("pricing", pricing), ("logistics", logistics)] {
        for i in 0..24 {
            let (_, decision) = manager
                .execute(Query::new(format!("{phase}-{i}"), referenced))
                .expect("drift query fits the schema");
            if let RepartitionDecision::Applied(ev) = decision {
                println!(
                    "[{phase}] query {}: re-sliced in place ({} files kept, {} rebuilt; \
                     pays off in {:.2} window executions)\n  now: {}",
                    ev.at_query,
                    ev.stats.files_kept,
                    ev.stats.files_rebuilt,
                    ev.payoff.executions_to_pay_off().unwrap_or(f64::NAN),
                    ev.new_layout.render(&schema)
                );
            }
        }
    }
    let stats = manager.stats();
    println!(
        "\n{} queries served; {} advisor runs ({} budget-truncated), \
         {} repartitions applied, {} rejected by the payoff test",
        stats.queries,
        stats.advisor_runs,
        stats.truncated_runs,
        stats.repartitions,
        stats.rejected_by_payoff
    );

    // A whole fleet: three tables behind one router, one shared advisor
    // budget per round, spent most-drifted-table-first. Orders traffic is
    // steady; Lineitem's pricing phase gives way to logistics mid-stream,
    // so Lineitem's window drifts and the scheduler keeps routing the
    // budget to where it is needed.
    println!("\n== TableFleet: a shared budget follows the drift ==\n");
    let fleet_rows = 8_000usize;
    let mut fleet = TableFleet::new(FleetConfig {
        advise_every: 12,
        round_budget: Budget::steps(8),
        schedule: FleetSchedule::SharedDriftFirst,
        drift_floor: 0.02,
    });
    for which in [
        tpch::TpchTable::Lineitem,
        tpch::TpchTable::Orders,
        tpch::TpchTable::Part,
    ] {
        let schema = tpch::table(which, 1.0).with_row_count(fleet_rows as u64);
        let data = generate_table(&schema, fleet_rows, 7);
        let stored = StoredTable::load(
            &schema,
            &data,
            &Partitioning::row(&schema),
            CompressionPolicy::Default,
        );
        fleet.add_table(
            schema.name().to_string(),
            TableManager::new(
                stored,
                Box::new(HillClimb::new()),
                HddCostModel::paper_testbed(),
                TableManagerConfig {
                    window: 16,
                    advise_every: u64::MAX, // the fleet schedules centrally
                    payoff_horizon: 8.0,
                    ..TableManagerConfig::default()
                },
            ),
        );
    }
    let orders_schema = tpch::table(tpch::TpchTable::Orders, 1.0);
    let part_schema = tpch::table(tpch::TpchTable::Part, 1.0);
    let orders_q = orders_schema.attr_set(&["OrderDate", "TotalPrice", "OrderStatus"])?;
    let part_q = part_schema.attr_set(&["Brand", "Type", "RetailPrice"])?;
    for i in 0..96usize {
        // Lineitem's traffic flips from pricing to logistics halfway.
        let (table, set) = match i % 3 {
            0 => ("Lineitem", if i < 48 { pricing } else { logistics }),
            1 => ("Orders", orders_q),
            _ => ("Part", part_q),
        };
        let (_, outcome) = fleet
            .execute(table, Query::new(format!("f{i}"), set))
            .expect("fleet queries fit their schemas");
        if let FleetOutcome::Round(decisions) = outcome {
            for (name, decision) in &decisions {
                if let RepartitionDecision::Applied(ev) = decision {
                    println!(
                        "[round at query {i:>2}] {name} re-sliced ({} kept / {} rebuilt) → {}",
                        ev.stats.files_kept,
                        ev.stats.files_rebuilt,
                        ev.new_layout
                            .render(&fleet.manager(name).expect("registered").table().schema)
                    );
                }
            }
        }
    }
    let fs = fleet.stats();
    println!(
        "\nfleet: {} queries over {} tables; {} rounds, {} sessions \
         ({} skipped for budget), {} steps spent, {} repartitions",
        fs.queries,
        fleet.len(),
        fs.rounds,
        fs.sessions,
        fs.sessions_skipped,
        fs.steps_spent,
        fs.repartitions
    );
    for name in ["Lineitem", "Orders", "Part"] {
        let m = fleet.manager(name).expect("registered");
        let payoff = m.realized_payoff();
        println!(
            "  {name}: {} queries, {} advisor runs, {} repartitions, {} partitions now; \
             realized payoff: invested {:.3}s modeled I/O, saved {:.3}s so far",
            m.stats().queries,
            m.stats().advisor_runs,
            m.stats().repartitions,
            m.layout().len(),
            payoff.invested_io_seconds,
            payoff.saved_io_seconds,
        );
    }

    // Serving under the knife: drain one batch across four worker threads
    // while the calling thread re-slices the live table mid-drain. The
    // scans never stall — each finishes on the snapshot it pinned — and
    // the drain's checksum accumulator proves nobody read a half-moved
    // layout.
    println!("\n== Serve front: scans racing a re-partition ==\n");
    let handle = manager.table_handle();
    let before_layout = manager.layout();
    let row_layout = Partitioning::row(&manager.table().schema);
    let batch: Vec<Query> = (0..256)
        .map(|i| {
            Query::new(
                format!("s{i}"),
                if i % 2 == 0 { pricing } else { logistics },
            )
        })
        .collect();
    let disk = DiskParams::paper_testbed();
    let (quiet, ()) = manager
        .serve_batch_with(&batch, 4, |_| ())
        .expect("batch fits the schema");
    let (racing, move_stats) = manager
        .serve_batch_with(&batch, 4, |_| handle.repartition(&row_layout, &disk))
        .expect("batch fits the schema");
    println!(
        "quiescent drain:  {} queries at {:>6.0} q/s on 4 threads (snapshot generation {})",
        quiet.queries, quiet.queries_per_second, quiet.max_generation
    );
    println!(
        "racing a move:    {} queries at {:>6.0} q/s — re-slice rebuilt {} files mid-drain, \
         scans pinned generations {}..={}",
        racing.queries,
        racing.queries_per_second,
        move_stats.files_rebuilt,
        racing.min_generation,
        racing.max_generation
    );
    assert_eq!(
        quiet.checksum, racing.checksum,
        "the drains returned identical data, move or no move"
    );
    println!(
        "identical checksums across both drains; layout {} → {}",
        before_layout.len(),
        manager.layout().len()
    );
    Ok(())
}
