//! Online partitioning: stream a drifting query workload and watch the
//! layout adapt — first through O2P's incremental splitter (the scenario
//! it was designed for, BIRTE '11), then end to end through the
//! [`TableManager`] lifecycle: live scans over a stored table, sliding-
//! window re-advising under a budget, the paper's payoff test, and
//! in-place `StoredTable::repartition`.
//!
//! Run with: `cargo run --release --example online_partitioning`

use slicer::core::O2pOnline;
use slicer::prelude::*;
use slicer::storage::{generate_table, CompressionPolicy, StoredTable};

fn main() -> Result<(), ModelError> {
    let table = tpch::table(tpch::TpchTable::Lineitem, 1.0);
    let cost = HddCostModel::new(DiskParams::paper_testbed().with_buffer_size(512 * 1024));
    let mut online = O2pOnline::new(&table, &cost);

    // Phase 1: a reporting application hammering the Q1/Q6 pricing columns.
    let pricing = table.attr_set(&["Quantity", "ExtendedPrice", "Discount", "ShipDate"])?;
    // Phase 2: a logistics application arrives, with a different footprint.
    let logistics = table.attr_set(&["OrderKey", "CommitDate", "ReceiptDate", "ShipMode"])?;

    println!("== O2P: the layout follows the stream ==\n");
    println!("initial layout: 1 partition (row layout), no queries seen\n");
    for i in 0..6 {
        let layout = online.observe(Query::new(format!("pricing-{i}"), pricing));
        if i == 5 {
            println!(
                "after {} pricing queries:\n  {}",
                i + 1,
                layout.render(&table)
            );
        }
    }
    for i in 0..10 {
        let layout = online.observe(Query::new(format!("logistics-{i}"), logistics));
        if i == 9 {
            println!(
                "\nafter {} more logistics queries:\n  {}",
                i + 1,
                layout.render(&table)
            );
        }
    }

    let final_layout = online.layout();
    println!(
        "\nthe pricing columns stay co-located: {}",
        final_layout
            .partition_of(table.attr_id("ExtendedPrice").expect("attr"))
            .map(|p| table.render_set(p))
            .expect("attr is in some partition")
    );
    println!(
        "the logistics columns found their own home: {}",
        final_layout
            .partition_of(table.attr_id("CommitDate").expect("attr"))
            .map(|p| table.render_set(p))
            .expect("attr is in some partition")
    );
    println!(
        "\ntotal queries observed: {}; final partition count: {}",
        online.queries_seen(),
        final_layout.len()
    );

    // The full lifecycle: a live stored table that re-slices itself when
    // (and only when) the paper's payoff test says the move amortizes.
    println!("\n== TableManager: payoff-gated in-place re-partitioning ==\n");
    let rows = 20_000usize;
    let schema = table.with_row_count(rows as u64);
    let data = generate_table(&schema, rows, 7);
    let stored = StoredTable::load(
        &schema,
        &data,
        &Partitioning::row(&schema),
        CompressionPolicy::Default,
    );
    let mut manager = TableManager::new(
        stored,
        Box::new(HillClimb::new()),
        HddCostModel::paper_testbed(),
        TableManagerConfig {
            window: 32,
            advise_every: 8,
            // Heavy live traffic cannot wait for an unbounded search:
            // every re-advise gets at most 10 ms, anytime best-so-far.
            budget: Budget::deadline(std::time::Duration::from_millis(10)),
            payoff_horizon: 64.0,
        },
    );
    for (phase, referenced) in [("pricing", pricing), ("logistics", logistics)] {
        for i in 0..24 {
            let (_, decision) = manager
                .execute(Query::new(format!("{phase}-{i}"), referenced))
                .expect("drift query fits the schema");
            if let RepartitionDecision::Applied(ev) = decision {
                println!(
                    "[{phase}] query {}: re-sliced in place ({} files kept, {} rebuilt; \
                     pays off in {:.2} window executions)\n  now: {}",
                    ev.at_query,
                    ev.stats.files_kept,
                    ev.stats.files_rebuilt,
                    ev.payoff.executions_to_pay_off().unwrap_or(f64::NAN),
                    ev.new_layout.render(&schema)
                );
            }
        }
    }
    let stats = manager.stats();
    println!(
        "\n{} queries served; {} advisor runs ({} budget-truncated), \
         {} repartitions applied, {} rejected by the payoff test",
        stats.queries,
        stats.advisor_runs,
        stats.truncated_runs,
        stats.repartitions,
        stats.rejected_by_payoff
    );
    Ok(())
}
