//! Replication and failover: a primary streaming its WAL to two
//! followers over the wire tier, then dying mid-service.
//!
//! Spins up a primary and two followers (each replaying the shipped
//! log — ingest batches, the dedup ledger, and a layout flip — through
//! the storage engine's normal recovery paths), drives ingest through a
//! failover-aware client, kills the primary, promotes a follower, and
//! shows the client's scans converging on the promoted node with
//! checksums bit-identical to what the primary served — while a retried
//! ingest sequence is answered from the shipped ledger instead of being
//! applied twice.
//!
//! Run with: `cargo run --release --example replication`

use slicer::client::{Client, ClientConfig};
use slicer::cost::HddCostModel;
use slicer::lifecycle::{FleetConfig, TableFleet, TableManager, TableManagerConfig};
use slicer::model::{AttrKind, AttrSet, Partitioning, Query, TableSchema};
use slicer::net::{Server, ServerConfig, ServerHandle, ServerRole, WireStream};
use slicer::storage::{generate_table, CompressionPolicy, IngestBatch, StoredTable};
use slicer_core::HillClimb;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const ROWS: usize = 4_000;

fn schema() -> TableSchema {
    TableSchema::builder("orders", ROWS as u64)
        .attr("OrderKey", 4, AttrKind::Int)
        .attr("Total", 8, AttrKind::Decimal)
        .attr("Date", 4, AttrKind::Date)
        .attr("Comment", 16, AttrKind::Text)
        .build()
        .expect("valid schema")
}

/// Primary and followers all seed from this identical deterministic
/// state — the epoch the replication log covers.
fn fleet() -> TableFleet {
    let s = schema();
    let data = generate_table(&s, ROWS, 42);
    let table = StoredTable::load(
        &s,
        &data,
        &Partitioning::row(&s),
        CompressionPolicy::Default,
    );
    let mut fleet = TableFleet::new(FleetConfig::default());
    fleet.add_table(
        "orders",
        TableManager::new(
            table,
            Box::new(HillClimb::new()),
            HddCostModel::paper_testbed(),
            TableManagerConfig::default(),
        ),
    );
    fleet
}

fn quick_cfg(role: ServerRole, follower_id: u64) -> ServerConfig {
    ServerConfig {
        role,
        follower_id,
        heartbeat_interval: Duration::from_millis(25),
        poll_interval: Duration::from_millis(5),
        ..ServerConfig::default()
    }
}

/// A follower whose pump dials whatever address `leader` currently
/// holds — after a promotion, pointing it at the new primary makes the
/// survivor resubscribe there from its own log cursor.
fn spawn_follower(leader: Arc<Mutex<SocketAddr>>, id: u64) -> ServerHandle {
    let hint = leader.lock().expect("leader addr").to_string();
    Server::spawn_follower(
        fleet(),
        quick_cfg(ServerRole::Follower { leader_hint: hint }, id),
        Box::new(move || {
            let addr = *leader.lock().expect("leader addr");
            let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(1))?;
            stream.set_nodelay(true).ok();
            Ok(Box::new(stream) as Box<dyn WireStream>)
        }),
    )
    .expect("bind follower")
}

fn log_len(handle: &ServerHandle) -> u64 {
    handle
        .repl_stats()
        .tables
        .iter()
        .find(|t| t.table == "orders")
        .map_or(0, |t| t.log_len)
}

fn wait_synced(primary: &ServerHandle, followers: &[&ServerHandle]) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while followers.iter().any(|f| log_len(f) < log_len(primary)) {
        assert!(Instant::now() < deadline, "followers never caught up");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn main() {
    let primary = Server::spawn(fleet(), quick_cfg(ServerRole::Primary, 0)).expect("bind primary");
    let leader = Arc::new(Mutex::new(primary.addr()));
    let f1 = spawn_follower(Arc::clone(&leader), 1);
    let f2 = spawn_follower(Arc::clone(&leader), 2);
    println!(
        "topology: primary {} -> followers {} and {}",
        primary.addr(),
        f1.addr(),
        f2.addr()
    );

    // A failover-aware client: primary listed first, followers behind it.
    let mut client = Client::connect_list(
        vec![primary.addr(), f1.addr(), f2.addr()],
        ClientConfig {
            client_id: 1,
            max_attempts: 20,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(40),
            ..ClientConfig::default()
        },
    );

    // Ingest through the wire (each batch also ships its dedup-ledger
    // entry), and flip the layout once — publishes replicate too.
    let s = schema();
    for i in 0..5u64 {
        let batch = IngestBatch::append(generate_table(&s, 200, 1_000 + i));
        let reply = client.ingest("orders", &batch).expect("ingest");
        println!(
            "ingest batch {i}: +{} rows (delta now {})",
            reply.rows_appended, reply.delta_rows
        );
    }
    primary.with_fleet(|fleet| {
        let target = fleet.scan_target("orders").expect("registered");
        let grouped = Partitioning::new(
            &schema(),
            vec![
                [0usize, 2].into_iter().collect::<AttrSet>(),
                [1usize, 3].into_iter().collect::<AttrSet>(),
            ],
        )
        .expect("valid layout");
        target.table.repartition(&grouped, &target.disk);
    });
    wait_synced(&primary, &[&f1, &f2]);
    println!(
        "replicated: log {} records on all three nodes",
        log_len(&primary)
    );

    let q = Query::new("q", [0usize, 1, 2, 3].into_iter().collect::<AttrSet>());
    let before = client.scan("orders", &q).expect("scan on primary");
    println!(
        "scan on primary:  checksum {:#018x} (generation {})",
        before.checksum, before.generation
    );

    // Kill the primary mid-service, promote follower 1, and point the
    // surviving follower's pump at the new primary: it resubscribes from
    // its own log cursor and keeps replaying.
    println!("killing the primary; promoting follower {}", f1.addr());
    primary.shutdown();
    f1.promote();
    *leader.lock().expect("leader addr") = f1.addr();

    // The same client's next scan rides the reconnect loop (jittered
    // backoff, server-list rotation) onto a follower — same bytes.
    let after = client.scan("orders", &q).expect("scan after failover");
    println!(
        "scan after kill:  checksum {:#018x} (generation {}, failovers {})",
        after.checksum,
        after.generation,
        client.stats().failovers
    );
    assert_eq!(
        after.checksum, before.checksum,
        "failover must serve bit-identical bytes"
    );

    // The shipped dedup ledger: a client retrying its first acknowledged
    // sequence after the failover is answered without re-applying.
    let mut retry = Client::connect_list(
        vec![f1.addr(), f2.addr()],
        ClientConfig {
            client_id: 1,
            ..ClientConfig::default()
        },
    );
    let replay = IngestBatch::append(generate_table(&s, 200, 1_000));
    let reply = retry.ingest("orders", &replay).expect("retried ingest");
    assert!(reply.deduped, "the ledger must answer a replayed sequence");
    println!(
        "retried sequence 1 after failover: deduped={}, delta unchanged",
        reply.deduped
    );

    // New writes land on the promoted primary and keep replicating to
    // the remaining follower.
    let fresh = IngestBatch::append(generate_table(&s, 200, 2_000));
    client
        .ingest("orders", &fresh)
        .expect("post-failover ingest");
    wait_synced(&f1, &[&f2]);
    println!(
        "post-failover ingest replicated: follower {} at log {}",
        f2.addr(),
        log_len(&f2)
    );

    f2.shutdown();
    f1.shutdown();
    println!("replication example: OK");
}
