//! Replication extensions: AutoPart's partial replication and Trojan's
//! per-replica layouts — the two modes the paper's unified setting strips
//! (Section 4, "Common Replication") and this library keeps as optional
//! features.
//!
//! Run with: `cargo run --release --example replication_modes`

use slicer::core::Trojan;
use slicer::prelude::*;

fn main() -> Result<(), ModelError> {
    let table = tpch::table(tpch::TpchTable::PartSupp, 1.0);
    let workload = Workload::with_queries(
        &table,
        vec![
            Query::new("scan-keys", table.attr_set(&["PartKey", "SuppKey"])?),
            Query::new(
                "stock-check",
                table.attr_set(&["PartKey", "SuppKey", "AvailQty", "SupplyCost"])?,
            ),
            Query::new(
                "audit",
                table.attr_set(&["AvailQty", "SupplyCost", "Comment"])?,
            ),
        ],
    )?;
    let cost = HddCostModel::new(DiskParams::paper_testbed().with_buffer_size(128 * 1024));
    let req = PartitionRequest::new(&table, &workload, &cost);

    // Baseline: the disjoint unified-setting AutoPart.
    let disjoint = AutoPart::new().partition(&req)?;
    let disjoint_cost = cost.workload_cost(&table, &disjoint, &workload);
    println!(
        "disjoint AutoPart ({} groups): {:.2} s",
        disjoint.len(),
        disjoint_cost
    );
    println!("  {}", disjoint.render(&table));

    // Partial replication with a 1.5× storage budget: attributes may appear
    // in several fragments; each query greedily picks its cheapest cover.
    let replicated = AutoPart::new().partition_with_replication(&req, 1.5)?;
    let replicated_cost = replicated.workload_cost(&table, &workload, &cost);
    println!(
        "\nreplicated AutoPart ({} fragments, {:.2}× storage): {:.2} s",
        replicated.fragments.len(),
        replicated.storage_blowup(&table),
        replicated_cost
    );
    for f in &replicated.fragments {
        println!("  F({})", table.render_set(*f));
    }
    assert!(
        replicated_cost <= disjoint_cost + 1e-9,
        "replication never hurts"
    );

    // Trojan's per-replica layouts: one layout per query group, as on HDFS
    // with three-way replication.
    let replicas = Trojan::new().partition_replicated(&req, 2)?;
    println!("\nTrojan with 2 data replicas:");
    for (i, r) in replicas.iter().enumerate() {
        let names: Vec<&str> = r
            .query_indices
            .iter()
            .map(|&q| workload.queries()[q].name.as_str())
            .collect();
        println!(
            "  replica {i}: queries {:?} → {}",
            names,
            r.layout.render(&table)
        );
    }
    Ok(())
}
