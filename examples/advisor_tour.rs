//! Advisor tour: run all seven knives on the TPC-H Lineitem table and
//! compare them along the paper's four metrics.
//!
//! Run with: `cargo run --release --example advisor_tour`

use slicer::core::{paper_advisors, PerfectMaterializedViews};
use slicer::metrics;
use slicer::prelude::*;
use std::time::Instant;

fn main() {
    let benchmark = tpch::benchmark(10.0);
    let li = benchmark.table_index("Lineitem").expect("lineitem exists");
    let table = &benchmark.tables()[li];
    let workload = benchmark.table_workload(li);
    let cost = HddCostModel::paper_testbed();
    let req = PartitionRequest::new(table, &workload, &cost);

    println!("{table}, {} queries reference it\n", workload.len());
    println!(
        "{:<11} {:>12} {:>10} {:>8} {:>7} {:>9}  layout",
        "advisor", "opt time", "est cost", "unnec%", "joins", "PMV dist"
    );

    let pmv = PerfectMaterializedViews::workload_cost(table, &workload, &cost);
    for advisor in paper_advisors() {
        let start = Instant::now();
        let layout = match advisor.partition(&req) {
            Ok(l) => l,
            Err(e) => {
                println!("{:<11} skipped: {e}", advisor.name());
                continue;
            }
        };
        let elapsed = start.elapsed();
        let c = cost.workload_cost(table, &layout, &workload);
        let vol = metrics::data_volume(table, &layout, &workload);
        let joins = metrics::avg_reconstruction_joins(&layout, &workload);
        println!(
            "{:<11} {:>12} {:>9.1}s {:>7.2}% {:>7.2} {:>8.1}%  {} groups",
            advisor.name(),
            format!("{elapsed:.2?}"),
            c,
            100.0 * vol.unnecessary_fraction(),
            joins,
            100.0 * (c - pmv) / pmv,
            layout.len(),
        );
    }

    for (name, layout) in [
        ("Column", Partitioning::column(table)),
        ("Row", Partitioning::row(table)),
    ] {
        let c = cost.workload_cost(table, &layout, &workload);
        let vol = metrics::data_volume(table, &layout, &workload);
        println!(
            "{:<11} {:>12} {:>9.1}s {:>7.2}% {:>7.2} {:>8.1}%  {} groups",
            name,
            "-",
            c,
            100.0 * vol.unnecessary_fraction(),
            metrics::avg_reconstruction_joins(&layout, &workload),
            100.0 * (c - pmv) / pmv,
            layout.len(),
        );
    }

    println!(
        "\nLesson 1: the greedy knives land on (or within a hair of) the brute-force optimum."
    );
    println!("Lesson 4: none of them beats Column by much on the full TPC-H workload.");
}
