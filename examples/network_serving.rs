//! Network serving: the wire protocol over a [`TableFleet`], exercised
//! through an **injected-fault** connection.
//!
//! Spins up the thread-per-connection server on loopback, then drives
//! scans and ingest through a client whose first connection cuts,
//! bit-flips, and delays traffic at exact byte offsets. The client's
//! retry loop (capped exponential backoff + reconnect + idempotent
//! ingest sequences) rides through every fault; an over-tight admission
//! bound then demonstrates `Overloaded {retry_after}` shedding.
//!
//! Run with: `cargo run --release --example network_serving`

use slicer::client::{Client, ClientConfig};
use slicer::cost::HddCostModel;
use slicer::lifecycle::{FleetConfig, TableFleet, TableManager, TableManagerConfig};
use slicer::model::{AttrKind, AttrSet, Partitioning, Query, TableSchema};
use slicer::net::{Fault, FaultKind, FaultPlan, FaultyStream, Server, ServerConfig, WireStream};
use slicer::storage::{generate_table, CompressionPolicy, IngestBatch, StoredTable};
use slicer_core::HillClimb;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn fleet() -> TableFleet {
    let schema = TableSchema::builder("orders", 4_000)
        .attr("OrderKey", 4, AttrKind::Int)
        .attr("Total", 8, AttrKind::Decimal)
        .attr("Date", 4, AttrKind::Date)
        .attr("Comment", 16, AttrKind::Text)
        .build()
        .expect("valid schema");
    let data = generate_table(&schema, 4_000, 42);
    let table = StoredTable::load(
        &schema,
        &data,
        &Partitioning::row(&schema),
        CompressionPolicy::Default,
    );
    let mut fleet = TableFleet::new(FleetConfig::default());
    fleet.add_table(
        "orders",
        TableManager::new(
            table,
            Box::new(HillClimb::new()),
            HddCostModel::paper_testbed(),
            TableManagerConfig::default(),
        ),
    );
    fleet
}

/// A client whose first connection runs under `plan`; reconnects after
/// the fault strikes are clean.
fn faulty_client(addr: SocketAddr, cfg: ClientConfig, plan: FaultPlan) -> Client {
    let dialed = Arc::new(AtomicUsize::new(0));
    Client::with_connector(
        cfg,
        Box::new(move || {
            let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(1))?;
            stream.set_nodelay(true).ok();
            if dialed.fetch_add(1, Ordering::SeqCst) == 0 {
                Ok(Box::new(FaultyStream::new(stream, plan.clone())) as Box<dyn WireStream>)
            } else {
                Ok(Box::new(stream) as Box<dyn WireStream>)
            }
        }),
    )
}

fn main() {
    let handle = Server::spawn(fleet(), ServerConfig::default()).expect("bind loopback");
    println!("serving table fleet on {}\n", handle.addr());

    let q = Query::new("report", [0usize, 1, 2].into_iter().collect::<AttrSet>());
    let cfg = ClientConfig {
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
        ..ClientConfig::default()
    };

    // A clean scan first: the reference checksum.
    let mut clean = Client::connect(handle.addr(), cfg.clone());
    let want = clean.scan("orders", &q).expect("clean scan").checksum;
    println!("clean scan          checksum {want:#018x}");

    // The same scan through every flavor of broken connection.
    let faults = [
        Fault::new(FaultKind::CutWrite, 10),
        Fault::new(FaultKind::FlipWrite, 24),
        Fault::new(FaultKind::CutRead, 12),
        Fault::new(FaultKind::FlipRead, 30),
        Fault::new(FaultKind::DelayRead, 0),
    ];
    for fault in faults {
        let plan = FaultPlan::single(fault.clone());
        let mut c = faulty_client(handle.addr(), cfg.clone(), plan);
        let got = c.scan("orders", &q).expect("retry converges").checksum;
        assert_eq!(got, want, "fault produced wrong bytes");
        let s = c.stats();
        println!(
            "{:<19} checksum ok after {} attempt(s), {} reconnect(s)",
            format!("{:?}@{}", fault.kind, fault.at_byte),
            s.attempts,
            s.reconnects
        );
    }

    // Idempotent ingest through a cut reply: the retry is answered from
    // the server's dedup ledger — the batch lands exactly once.
    let schema = handle.with_fleet(|f| f.scan_target("orders").unwrap().table.schema.clone());
    let batch = IngestBatch::append(generate_table(&schema, 64, 7));
    let plan = FaultPlan::single(Fault::new(FaultKind::CutRead, 4));
    let mut writer = faulty_client(
        handle.addr(),
        ClientConfig {
            client_id: 2,
            ..cfg.clone()
        },
        plan,
    );
    let reply = writer.ingest("orders", &batch).expect("ingest converges");
    println!(
        "\ningest through cut reply: {} rows appended, deduped={}, retries={}",
        64,
        reply.deduped,
        writer.stats().retries
    );

    // Overload: shrink the admission bound to zero and watch the server
    // shed with a typed retry-after instead of queueing unbounded work.
    let fleet = handle.shutdown();
    let handle = Server::spawn(
        fleet,
        ServerConfig {
            admission_max_io_seconds: 0.0,
            ..ServerConfig::default()
        },
    )
    .expect("respawn");
    let mut c = Client::connect(
        handle.addr(),
        ClientConfig {
            max_attempts: 3,
            ..cfg
        },
    );
    let err = c.scan("orders", &q).expect_err("admission bound is zero");
    let stats = handle.stats();
    println!(
        "\noverload drill: {err}\n  client saw {} Overloaded frame(s); server shed {} scan(s), served {}",
        c.stats().overloaded,
        stats.shed_overload,
        stats.scans_ok
    );

    let final_stats = handle.stats();
    println!(
        "\nserver counters: {} requests, {} scans ok, {} ingests ok, {} typed errors, {} malformed frames",
        final_stats.requests,
        final_stats.scans_ok,
        final_stats.ingests_ok,
        final_stats.typed_errors,
        final_stats.malformed_frames
    );
    handle.shutdown();
    println!("\nevery fault converged on identical bytes; overload shed with a typed retry-after.");
}
