//! Buffer tuning: the paper's Lesson 2 — "watch out for the buffer size".
//!
//! Sweeps the database I/O buffer and shows where vertical partitioning
//! stops paying off against a plain column layout, and how badly a layout
//! tuned for one buffer size behaves under another (fragility).
//!
//! Run with: `cargo run --release --example buffer_tuning`

use slicer::metrics::{column_cost, fragility, run_advisor};
use slicer::prelude::*;

fn main() {
    let benchmark = tpch::benchmark(10.0);
    let base = HddCostModel::paper_testbed(); // 8 MB buffer

    println!("re-optimizing HillClimb for each buffer size (TPC-H SF 10):\n");
    println!(
        "{:>12} {:>14} {:>14} {:>10}",
        "buffer", "HillClimb (s)", "Column (s)", "HC/Col"
    );
    let mut crossover: Option<f64> = None;
    for mb in [0.05f64, 0.5, 2.0, 8.0, 32.0, 100.0, 400.0, 1600.0] {
        let model = HddCostModel::new(
            DiskParams::paper_testbed().with_buffer_size((mb * 1024.0 * 1024.0) as u64),
        );
        let run = run_advisor(&HillClimb::new(), &benchmark, &model).expect("hillclimb");
        let hc = run.total_cost(&benchmark, &model);
        let col = column_cost(&benchmark, &model);
        let ratio = hc / col;
        if ratio > 0.99 && crossover.is_none() {
            crossover = Some(mb);
        }
        println!(
            "{:>9} MB {:>14.1} {:>14.1} {:>9.1}%",
            mb,
            hc,
            col,
            100.0 * ratio
        );
    }
    if let Some(mb) = crossover {
        println!(
            "\n→ above ≈{mb} MB of buffer, just use a column layout (paper: <100 MB is the \
             vertical partitioning sweet spot)"
        );
    }

    // Fragility: keep the 8 MB-tuned layouts, shrink the buffer 100×.
    let run = run_advisor(&HillClimb::new(), &benchmark, &base).expect("hillclimb");
    let tiny = HddCostModel::new(DiskParams::paper_testbed().with_buffer_size(80 * 1024));
    let f = fragility(&run, &benchmark, &base, &tiny);
    println!(
        "\nfragility check: the 8 MB-tuned layouts run {:.1}× slower if the buffer \
         drops to 80 KB at query time — re-run the advisor when the hardware changes",
        1.0 + f
    );
}
