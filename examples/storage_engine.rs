//! Storage engine end-to-end: store a generated Orders table under three
//! layouts and two compression schemes in the mini engine, run real scans,
//! and compare measured runtimes with the cost model's predictions —
//! the Table 7 experiment in miniature.
//!
//! Run with: `cargo run --release --example storage_engine`

use slicer::prelude::*;
use slicer::storage::{generate_table, scan_naive, CompressionPolicy, ScanExecutor, StoredTable};

fn main() -> Result<(), ModelError> {
    let nominal = tpch::table(tpch::TpchTable::Orders, 1.0);
    let rows = 50_000u64;
    let table = nominal.with_row_count(rows);
    let data = generate_table(&table, rows as usize, 2024);

    let workload = Workload::with_queries(
        &table,
        vec![
            Query::new("count-by-priority", table.attr_set(&["OrderPriority"])?),
            Query::new(
                "totals",
                table.attr_set(&["OrderKey", "TotalPrice", "OrderDate"])?,
            ),
            Query::new(
                "audit",
                table.attr_set(&["OrderKey", "CustKey", "Comment"])?,
            ),
        ],
    )?;
    let cost = HddCostModel::paper_testbed();
    let req = PartitionRequest::new(&table, &workload, &cost);
    let hillclimb = HillClimb::new().partition(&req)?;
    let disk = DiskParams::paper_testbed();

    println!(
        "{} rows; HillClimb layout: {}\n",
        rows,
        hillclimb.render(&table)
    );
    println!(
        "{:<12} {:<24} {:>10} {:>10} {:>11} {:>10} {:>12}",
        "compression", "layout", "io (ms)", "cpu (ms)", "naive (ms)", "MB read", "stored MB"
    );
    for policy in [
        CompressionPolicy::None,
        CompressionPolicy::Default,
        CompressionPolicy::Dictionary,
    ] {
        for (name, layout) in [
            ("Row", Partitioning::row(&table)),
            ("Column", Partitioning::column(&table)),
            ("HillClimb", hillclimb.clone()),
        ] {
            let stored = StoredTable::load(&table, &data, &layout, policy);
            let exec = ScanExecutor::new(&stored); // cold cache per scan
            let (mut io, mut cpu, mut naive_cpu, mut bytes) = (0.0, 0.0, 0.0, 0u64);
            let mut checksum = 0u64;
            for q in workload.queries() {
                let r = exec.scan(q.referenced, &disk);
                let n = scan_naive(&stored, q.referenced, &disk);
                assert_eq!(n.checksum, r.checksum, "executor must match the oracle");
                io += r.io_seconds;
                cpu += r.cpu_seconds;
                naive_cpu += n.cpu_seconds;
                bytes += r.bytes_read;
                checksum ^= r.checksum;
            }
            println!(
                "{:<12} {:<24} {:>10.2} {:>10.2} {:>11.2} {:>10.2} {:>12.2}   (checksum {checksum:016x})",
                format!("{policy:?}"),
                name,
                io * 1e3,
                cpu * 1e3,
                naive_cpu * 1e3,
                bytes as f64 / 1e6,
                stored.stored_bytes() as f64 / 1e6,
            );
        }
    }
    println!(
        "\nnote how variable-width compression (Default) makes the grouped layouts pay \
         CPU to walk whole partitions, while fixed-width Dictionary touches only the \
         referenced columns — the mechanism behind the paper's Table 7. `cpu` is the \
         vectorized ScanExecutor (cold cache), `naive` the original \
         materialize-then-iterate path; checksums are asserted identical."
    );
    Ok(())
}
