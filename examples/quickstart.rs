//! Quickstart: the paper's introductory example (Section 1.1).
//!
//! Partition the TPC-H PartSupp table for a two-query workload and compare
//! the advisor's layout against row and column layouts.
//!
//! Run with: `cargo run --release --example quickstart`

use slicer::prelude::*;

fn main() -> Result<(), ModelError> {
    // The PartSupp table at scale factor 10 (8 M rows).
    let table = tpch::table(tpch::TpchTable::PartSupp, 10.0);
    println!("table: {table}");

    // The paper's workload:
    //   Q1: SELECT PartKey, SuppKey, AvailQty, SupplyCost FROM PartSupp;
    //   Q2: SELECT AvailQty, SupplyCost, Comment FROM PartSupp;
    let workload = Workload::with_queries(
        &table,
        vec![
            Query::new(
                "Q1",
                table.attr_set(&["PartKey", "SuppKey", "AvailQty", "SupplyCost"])?,
            ),
            Query::new(
                "Q2",
                table.attr_set(&["AvailQty", "SupplyCost", "Comment"])?,
            ),
        ],
    )?;

    // A disk with a deliberately small I/O buffer, where vertical
    // partitioning matters most (paper Lesson 2).
    let disk = DiskParams::paper_testbed().with_buffer_size(64 * 1024);
    let cost = HddCostModel::new(disk);
    let req = PartitionRequest::new(&table, &workload, &cost);

    // Ask the paper's best knife (Lesson 3).
    let layout = HillClimb::new().partition(&req)?;
    println!("\nHillClimb layout: {}", layout.render(&table));

    let row = Partitioning::row(&table);
    let column = Partitioning::column(&table);
    println!("\nestimated workload costs (seconds):");
    for (name, p) in [("HillClimb", &layout), ("Row", &row), ("Column", &column)] {
        println!(
            "  {name:10} {:10.2}",
            cost.workload_cost(&table, p, &workload)
        );
    }

    // The layout should be the paper's P1(PartKey,SuppKey),
    // P2(AvailQty,SupplyCost), P3(Comment).
    assert_eq!(layout.len(), 3);
    println!(
        "\nQ1 touches {} partitions, Q2 touches {} partitions",
        layout.referenced_count(workload.queries()[0].referenced),
        layout.referenced_count(workload.queries()[1].referenced)
    );
    Ok(())
}
