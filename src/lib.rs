//! # slicer — vertical partitioning advisors for row stores
//!
//! A Rust reproduction of *"A Comparison of Knives for Bread Slicing"*
//! (Jindal, Palatinus, Pavlov, Dittrich; PVLDB 6(6), 2013): seven vertical
//! partitioning algorithms, two cost models, the TPC-H/SSB workload models,
//! the paper's four comparison metrics, and a mini storage engine used to
//! validate estimated costs end to end.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! ```
//! use slicer::prelude::*;
//!
//! // The PartSupp example from the paper's introduction.
//! let table = tpch::table(tpch::TpchTable::PartSupp, 1.0);
//! let workload = Workload::with_queries(&table, vec![
//!     Query::new("Q1", table.attr_set(&["PartKey", "SuppKey", "AvailQty", "SupplyCost"]).unwrap()),
//!     Query::new("Q2", table.attr_set(&["AvailQty", "SupplyCost", "Comment"]).unwrap()),
//! ]).unwrap();
//!
//! let cost = HddCostModel::paper_testbed();
//! let layout = HillClimb::new().partition(&PartitionRequest::new(&table, &workload, &cost)).unwrap();
//! assert!(layout.len() >= 2);
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured results of every table and figure.

pub use slicer_client as client;
pub use slicer_combinat as combinat;
pub use slicer_core as core;
pub use slicer_cost as cost;
pub use slicer_experiments as experiments;
pub use slicer_lifecycle as lifecycle;
pub use slicer_metrics as metrics;
pub use slicer_model as model;
pub use slicer_net as net;
pub use slicer_storage as storage;
pub use slicer_workloads as workloads;

/// One-stop imports for applications.
pub mod prelude {
    pub use slicer_client::{Client, ClientConfig, ClientError, ClientStats};
    pub use slicer_core::{
        Advisor, AdvisorSession, AutoPart, BruteForce, Budget, BudgetPool, HillClimb, Hyrise,
        Navathe, PartitionRequest, SessionStats, Trojan, O2P,
    };
    pub use slicer_cost::{CostModel, DiskParams, EvalMemos, HddCostModel, MainMemoryCostModel};
    pub use slicer_lifecycle::{
        AdoptionPricing, DriftScore, FleetConfig, FleetOutcome, FleetSchedule, FleetStats,
        RepartitionDecision, RepartitionEvent, TableFleet, TableManager, TableManagerConfig,
    };
    pub use slicer_model::{
        AttrId, AttrKind, AttrSet, Attribute, ModelError, Partitioning, Query, SlidingWorkload,
        TableSchema, Workload,
    };
    pub use slicer_net::{
        ErrorCode, FollowerConnector, ReplStats, Server, ServerConfig, ServerHandle, ServerRole,
    };
    pub use slicer_workloads::{ssb, tpch, Benchmark};
}
